package transport

import (
	"bytes"
	"context"
	"errors"
	mrand "math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rsse/internal/core"
	"rsse/internal/cover"
	"rsse/internal/lsm"
	"rsse/internal/sse"
)

func testClientIndex(t *testing.T, kind core.Kind) (*core.Client, *core.Index, []core.Tuple) {
	t.Helper()
	rnd := mrand.New(mrand.NewSource(7))
	tuples := make([]core.Tuple, 200)
	for i := range tuples {
		tuples[i] = core.Tuple{
			ID:      uint64(i + 1),
			Value:   rnd.Uint64() % 1024,
			Payload: []byte{byte(i), byte(i >> 8)},
		}
	}
	c, err := core.NewClient(kind, cover.Domain{Bits: 10}, core.Options{
		SSE:               sse.Basic{},
		Rand:              mrand.New(mrand.NewSource(8)),
		MasterKey:         bytes.Repeat([]byte{9}, 32),
		AllowIntersecting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.BuildIndex(tuples)
	if err != nil {
		t.Fatal(err)
	}
	return c, idx, tuples
}

func exact(tuples []core.Tuple, q core.Range) []core.ID {
	var out []core.ID
	for _, tu := range tuples {
		if q.Contains(tu.Value) {
			out = append(out, tu.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pipeServer serves idx under the default name over one end of a
// net.Pipe and returns the owner-side Conn.
func pipeServer(t *testing.T, idx core.Server) *Conn {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	go func() { _ = ServeConn(serverEnd, idx) }()
	t.Cleanup(func() { serverEnd.Close(); clientEnd.Close() })
	return NewConn(clientEnd)
}

// pipeRegistry serves a full registry over a net.Pipe.
func pipeRegistry(t *testing.T, reg *Registry) *Conn {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	go func() { _ = ServeConnRegistry(serverEnd, reg) }()
	t.Cleanup(func() { serverEnd.Close(); clientEnd.Close() })
	return NewConn(clientEnd)
}

// TestRemoteQueryAllSchemes runs the full query protocol over a pipe for
// every scheme, including the interactive SRC-i (two Search round trips).
func TestRemoteQueryAllSchemes(t *testing.T) {
	kinds := []core.Kind{
		core.ConstantBRC, core.ConstantURC,
		core.LogarithmicBRC, core.LogarithmicURC,
		core.LogarithmicSRC, core.LogarithmicSRCi,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			c, idx, tuples := testClientIndex(t, kind)
			remote := pipeServer(t, idx).Default()
			for _, q := range []core.Range{{Lo: 100, Hi: 600}, {Lo: 0, Hi: 1023}, {Lo: 777, Hi: 777}} {
				res, err := c.QueryServer(remote, q)
				if err != nil {
					t.Fatalf("query %v: %v", q, err)
				}
				got := append([]core.ID(nil), res.Matches...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				want := exact(tuples, q)
				if len(got) != len(want) {
					t.Fatalf("query %v: got %d matches, want %d", q, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %v: match %d = %d, want %d", q, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestRemoteFetchTuple(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicBRC)
	remote := pipeServer(t, idx).Default()
	tup, err := c.FetchTuple(remote, tuples[5].ID)
	if err != nil {
		t.Fatal(err)
	}
	if tup.Value != tuples[5].Value || !bytes.Equal(tup.Payload, tuples[5].Payload) {
		t.Errorf("remote fetch = %+v, want %+v", tup, tuples[5])
	}
	if _, err := c.FetchTuple(remote, 99999); err == nil {
		t.Error("unknown id fetched remotely")
	}
}

func TestRemoteMetaCached(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicSRCi)
	remote := pipeServer(t, idx).Default()
	a, err := remote.Meta()
	if err != nil {
		t.Fatal(err)
	}
	b, err := remote.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Kind != core.LogarithmicSRCi || a.N != 200 || a.DomainBits != 10 {
		t.Errorf("meta = %+v / %+v", a, b)
	}
}

func TestRemoteKindMismatch(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicSRC)
	other, err := core.NewClient(core.LogarithmicBRC, cover.Domain{Bits: 10}, core.Options{SSE: sse.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	remote := pipeServer(t, idx).Default()
	if _, err := other.QueryServer(remote, core.Range{Lo: 0, Hi: 5}); !errors.Is(err, core.ErrKindMismatch) {
		t.Errorf("kind mismatch error = %v", err)
	}
}

// TestRegistry exercises the registry's own bookkeeping.
func TestRegistry(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicBRC)
	reg := NewRegistry()
	if err := reg.Register("a", idx); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("a", idx); !errors.Is(err, ErrDuplicateIndex) {
		t.Errorf("duplicate register error = %v", err)
	}
	if err := reg.Register("", idx); !errors.Is(err, ErrBadIndexName) {
		t.Errorf("empty name error = %v", err)
	}
	if err := reg.Register(strings.Repeat("x", 300), idx); !errors.Is(err, ErrBadIndexName) {
		t.Errorf("long name error = %v", err)
	}
	if err := reg.Register("b", idx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("names = %v", got)
	}
	if _, err := reg.Lookup("nope"); !errors.Is(err, ErrUnknownIndex) {
		t.Errorf("unknown lookup error = %v", err)
	}
	if !reg.Deregister("a") || reg.Deregister("a") {
		t.Error("deregister bookkeeping broken")
	}
	if reg.Len() != 1 {
		t.Errorf("len = %d", reg.Len())
	}
}

// TestMaxLengthIndexName serves an index under a 255-byte name — the
// longest the wire's length byte can carry — end to end.
func TestMaxLengthIndexName(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicBRC)
	long := strings.Repeat("n", 255)
	reg := NewRegistry()
	if err := reg.Register(long, idx); err != nil {
		t.Fatal(err)
	}
	conn := pipeRegistry(t, reg)
	names, err := conn.Names()
	if err != nil || len(names) != 1 || names[0] != long {
		t.Fatalf("Names = %v, %v", names, err)
	}
	q := core.Range{Lo: 0, Hi: 500}
	res, err := c.QueryServer(conn.Index(long), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(exact(tuples, q)) {
		t.Errorf("got %d matches", len(res.Matches))
	}
}

// TestMultiIndexServer serves two independently-keyed indexes of
// different schemes from one process and queries both over one
// connection.
func TestMultiIndexServer(t *testing.T) {
	cBRC, idxBRC, tuplesBRC := testClientIndex(t, core.LogarithmicBRC)
	cSRC, idxSRC, tuplesSRC := testClientIndex(t, core.LogarithmicSRC)
	reg := NewRegistry()
	if err := reg.Register("brc", idxBRC); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("src", idxSRC); err != nil {
		t.Fatal(err)
	}
	conn := pipeRegistry(t, reg)

	names, err := conn.Names()
	if err != nil || len(names) != 2 || names[0] != "brc" || names[1] != "src" {
		t.Fatalf("Names = %v, %v", names, err)
	}

	q := core.Range{Lo: 64, Hi: 700}
	resBRC, err := cBRC.QueryServer(conn.Index("brc"), q)
	if err != nil {
		t.Fatal(err)
	}
	resSRC, err := cSRC.QueryServer(conn.Index("src"), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resBRC.Matches) != len(exact(tuplesBRC, q)) {
		t.Errorf("brc matches = %d", len(resBRC.Matches))
	}
	if len(resSRC.Matches) != len(exact(tuplesSRC, q)) {
		t.Errorf("src matches = %d", len(resSRC.Matches))
	}

	// Unknown index: clean server-side error, connection stays usable.
	if _, err := cBRC.QueryServer(conn.Index("ghost"), q); err == nil ||
		!strings.Contains(err.Error(), "unknown index") {
		t.Errorf("ghost index error = %v", err)
	}
	if _, err := conn.Lookup("ghost"); err == nil {
		t.Error("Lookup(ghost) succeeded")
	}
	if _, err := cBRC.QueryServer(conn.Index("brc"), core.Range{Lo: 0, Hi: 63}); err != nil {
		t.Errorf("connection unusable after unknown-index error: %v", err)
	}
}

// TestOneConnConcurrentUse hammers a single Conn (and a single handle)
// from many goroutines — the regression test for the old frame-stream
// corruption footgun; run with -race.
func TestOneConnConcurrentUse(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicBRC)
	conn := pipeServer(t, idx)
	handle := conn.Default()
	q := core.Range{Lo: 200, Hi: 800}
	want := exact(tuples, q)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Clients are not concurrent-safe; one per goroutine, same key.
			cc, err := core.NewClient(core.LogarithmicBRC, cover.Domain{Bits: 10}, core.Options{
				SSE:       sse.Basic{},
				MasterKey: bytes.Repeat([]byte{9}, 32),
			})
			if err != nil {
				t.Errorf("client: %v", err)
				return
			}
			for rep := 0; rep < 5; rep++ {
				res, err := cc.QueryServer(handle, q)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(res.Matches) != len(want) {
					t.Errorf("goroutine %d: got %d matches, want %d", g, len(res.Matches), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_ = c
}

// TestServerLoad is the transport load test: N concurrent clients × M
// queries each, against one served registry of two indexes over real TCP,
// results checked against local Query. Run with -race.
func TestServerLoad(t *testing.T) {
	kinds := map[string]core.Kind{"brc": core.LogarithmicBRC, "srci": core.LogarithmicSRCi}
	tuplesOf := map[string][]core.Tuple{}
	reg := NewRegistry()
	for name, kind := range kinds {
		_, idx, tuples := testClientIndex(t, kind)
		if err := reg.Register(name, idx); err != nil {
			t.Fatal(err)
		}
		tuplesOf[name] = tuples
	}
	srv := NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	const clients, queriesPerClient = 8, 6
	queries := []core.Range{{Lo: 0, Hi: 1023}, {Lo: 100, Hi: 600}, {Lo: 512, Hi: 515}}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Dial("tcp", l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			for name, kind := range kinds {
				cc, err := core.NewClient(kind, cover.Domain{Bits: 10}, core.Options{
					SSE:       sse.Basic{},
					MasterKey: bytes.Repeat([]byte{9}, 32),
				})
				if err != nil {
					t.Errorf("client: %v", err)
					return
				}
				handle := conn.Index(name)
				for rep := 0; rep < queriesPerClient; rep++ {
					q := queries[(i+rep)%len(queries)]
					res, err := cc.QueryServer(handle, q)
					if err != nil {
						t.Errorf("client %d %s: %v", i, name, err)
						return
					}
					got := append([]core.ID(nil), res.Matches...)
					sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
					want := exact(tuplesOf[name], q)
					if len(got) != len(want) {
						t.Errorf("client %d %s: %d matches, want %d", i, name, len(got), len(want))
						return
					}
					for j := range got {
						if got[j] != want[j] {
							t.Errorf("client %d %s: result mismatch", i, name)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// slowIndex wraps a core.Server and delays Meta — for shutdown draining.
type slowIndex struct {
	core.Server
	delay time.Duration
}

func (s *slowIndex) Meta() (core.IndexMeta, error) {
	time.Sleep(s.delay)
	return s.Server.Meta()
}

// TestGracefulShutdown: a request in flight when Shutdown begins still
// completes and its response arrives; afterwards the listener is closed.
func TestGracefulShutdown(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicBRC)
	reg := NewRegistry()
	if err := reg.Register(DefaultIndex, &slowIndex{Server: idx, delay: 200 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	conn, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	metaDone := make(chan error, 1)
	go func() {
		_, err := conn.Default().Meta()
		metaDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the server

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-metaDone; err != nil {
		t.Errorf("in-flight request dropped during shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
	if _, err := Dial("tcp", l.Addr().String()); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Errorf("serve after shutdown = %v", err)
	}
}

// TestLSMEpochsOverTransport serves every epoch of an update manager as
// a named index from one process and runs the owner's fan-out query
// through the connection — the multi-index deployment of Section 7.
func TestLSMEpochsOverTransport(t *testing.T) {
	dom := cover.Domain{Bits: 10}
	m, err := lsm.NewManager(core.LogarithmicBRC, dom, 4, core.Options{SSE: sse.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	rnd := mrand.New(mrand.NewSource(5))
	next := uint64(1)
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 40; i++ {
			m.Insert(next, rnd.Uint64()%1024, nil)
			next++
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	epochs := m.ActiveEpochs()
	if len(epochs) < 2 {
		t.Fatalf("want ≥ 2 active epochs, got %d", len(epochs))
	}
	reg := NewRegistry()
	for _, e := range epochs {
		if err := reg.Register(e.Name, e.Index); err != nil {
			t.Fatal(err)
		}
	}
	conn := pipeRegistry(t, reg)

	q := core.Range{Lo: 100, Hi: 900}
	local, _, err := m.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	remote, stats, err := m.QueryOn(conn, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Indexes != len(epochs) {
		t.Errorf("fanned out to %d indexes, want %d", stats.Indexes, len(epochs))
	}
	key := func(ts []core.Tuple) []core.ID {
		out := make([]core.ID, len(ts))
		for i, tu := range ts {
			out[i] = tu.ID
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	a, b := key(local), key(remote)
	if len(a) != len(b) {
		t.Fatalf("remote returned %d tuples, local %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("remote and local LSM results differ")
		}
	}
}

func TestServerRejectsGarbageRequests(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicBRC)
	serverEnd, clientEnd := net.Pipe()
	go func() { _ = ServeConn(serverEnd, idx) }()
	defer serverEnd.Close()
	defer clientEnd.Close()

	// Unknown op → statusErr response routed by request id, connection
	// stays up.
	if err := writeFrame(clientEnd, appendRequest(42, 77, DefaultIndex, []byte("junk"))); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) < responseHeader || body[4] != statusErr ||
		!strings.Contains(string(body[responseHeader:]), "unknown request") {
		t.Errorf("response = %x", body)
	}
	// The connection still answers valid requests afterwards.
	conn := NewConn(clientEnd)
	meta, err := conn.Default().Meta()
	if err != nil || meta.Kind != core.LogarithmicBRC {
		t.Errorf("meta after garbage: %+v, %v", meta, err)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write error = %v", err)
	}
	// A forged oversized header must be rejected on read.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read error = %v", err)
	}
}

func TestTrapdoorWireRoundtrip(t *testing.T) {
	c, _, _ := testClientIndex(t, core.ConstantURC)
	td, err := c.Trapdoor(core.Range{Lo: 13, Hi: 200})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := td.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.UnmarshalTrapdoor(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Round() != td.Round() || len(back.GGM) != len(td.GGM) {
		t.Fatalf("roundtrip mismatch: %d GGM tokens vs %d", len(back.GGM), len(td.GGM))
	}
	for i := range td.GGM {
		if back.GGM[i] != td.GGM[i] {
			t.Fatal("GGM token corrupted")
		}
	}
	// Stag-based trapdoors too.
	c2, _, _ := testClientIndex(t, core.LogarithmicURC)
	td2, err := c2.Trapdoor(core.Range{Lo: 13, Hi: 200})
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := td2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := core.UnmarshalTrapdoor(blob2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back2.Stags) != len(td2.Stags) {
		t.Fatal("stag count corrupted")
	}
	for i := range td2.Stags {
		if back2.Stags[i] != td2.Stags[i] {
			t.Fatal("stag corrupted")
		}
	}
	// Garbage rejected.
	for _, bad := range [][]byte{nil, {0}, {9, 0, 0, 0, 0, 1}, blob[:len(blob)-3]} {
		if _, err := core.UnmarshalTrapdoor(bad); err == nil {
			t.Error("garbage trapdoor accepted")
		}
	}
}

func TestResponseWireRoundtrip(t *testing.T) {
	resp := &core.Response{Groups: [][][]byte{
		{[]byte("abc"), []byte("")},
		{},
		{[]byte{1, 2, 3, 4, 5, 6, 7, 8}},
	}}
	blob, err := resp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.UnmarshalResponse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Groups) != 3 || back.Items() != resp.Items() {
		t.Fatalf("roundtrip: %d groups, %d items", len(back.Groups), back.Items())
	}
	if !bytes.Equal(back.Groups[0][0], []byte("abc")) {
		t.Error("payload corrupted")
	}
	for _, bad := range [][]byte{{1}, blob[:len(blob)-2], append(blob, 9)} {
		if _, err := core.UnmarshalResponse(bad); err == nil {
			t.Error("garbage response accepted")
		}
	}
}
