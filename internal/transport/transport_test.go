package transport

import (
	"bytes"
	"errors"
	mrand "math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"

	"rsse/internal/core"
	"rsse/internal/cover"
	"rsse/internal/sse"
)

func testClientIndex(t *testing.T, kind core.Kind) (*core.Client, *core.Index, []core.Tuple) {
	t.Helper()
	rnd := mrand.New(mrand.NewSource(7))
	tuples := make([]core.Tuple, 200)
	for i := range tuples {
		tuples[i] = core.Tuple{
			ID:      uint64(i + 1),
			Value:   rnd.Uint64() % 1024,
			Payload: []byte{byte(i), byte(i >> 8)},
		}
	}
	c, err := core.NewClient(kind, cover.Domain{Bits: 10}, core.Options{
		SSE:               sse.Basic{},
		Rand:              mrand.New(mrand.NewSource(8)),
		MasterKey:         bytes.Repeat([]byte{9}, 32),
		AllowIntersecting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.BuildIndex(tuples)
	if err != nil {
		t.Fatal(err)
	}
	return c, idx, tuples
}

func exact(tuples []core.Tuple, q core.Range) []core.ID {
	var out []core.ID
	for _, tu := range tuples {
		if q.Contains(tu.Value) {
			out = append(out, tu.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pipeServer serves idx over one end of a net.Pipe and returns the
// owner-side Conn.
func pipeServer(t *testing.T, idx core.Server) *Conn {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	go func() { _ = ServeConn(serverEnd, idx) }()
	t.Cleanup(func() { serverEnd.Close(); clientEnd.Close() })
	return NewConn(clientEnd)
}

// TestRemoteQueryAllSchemes runs the full query protocol over a pipe for
// every scheme, including the interactive SRC-i (two Search round trips).
func TestRemoteQueryAllSchemes(t *testing.T) {
	kinds := []core.Kind{
		core.ConstantBRC, core.ConstantURC,
		core.LogarithmicBRC, core.LogarithmicURC,
		core.LogarithmicSRC, core.LogarithmicSRCi,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			c, idx, tuples := testClientIndex(t, kind)
			remote := pipeServer(t, idx)
			for _, q := range []core.Range{{Lo: 100, Hi: 600}, {Lo: 0, Hi: 1023}, {Lo: 777, Hi: 777}} {
				res, err := c.QueryServer(remote, q)
				if err != nil {
					t.Fatalf("query %v: %v", q, err)
				}
				got := append([]core.ID(nil), res.Matches...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				want := exact(tuples, q)
				if len(got) != len(want) {
					t.Fatalf("query %v: got %d matches, want %d", q, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %v: match %d = %d, want %d", q, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestRemoteFetchTuple(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicBRC)
	remote := pipeServer(t, idx)
	tup, err := c.FetchTuple(remote, tuples[5].ID)
	if err != nil {
		t.Fatal(err)
	}
	if tup.Value != tuples[5].Value || !bytes.Equal(tup.Payload, tuples[5].Payload) {
		t.Errorf("remote fetch = %+v, want %+v", tup, tuples[5])
	}
	if _, err := c.FetchTuple(remote, 99999); err == nil {
		t.Error("unknown id fetched remotely")
	}
}

func TestRemoteMetaCached(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicSRCi)
	remote := pipeServer(t, idx)
	a, err := remote.Meta()
	if err != nil {
		t.Fatal(err)
	}
	b, err := remote.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Kind != core.LogarithmicSRCi || a.N != 200 || a.DomainBits != 10 {
		t.Errorf("meta = %+v / %+v", a, b)
	}
}

func TestRemoteKindMismatch(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicSRC)
	other, err := core.NewClient(core.LogarithmicBRC, cover.Domain{Bits: 10}, core.Options{SSE: sse.Basic{}})
	if err != nil {
		t.Fatal(err)
	}
	remote := pipeServer(t, idx)
	if _, err := other.QueryServer(remote, core.Range{Lo: 0, Hi: 5}); !errors.Is(err, core.ErrKindMismatch) {
		t.Errorf("kind mismatch error = %v", err)
	}
}

// TestTCPServer exercises the real listener path with concurrent clients.
func TestTCPServer(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicSRC)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(l, idx) }()

	q := core.Range{Lo: 200, Hi: 800}
	want := exact(tuples, q)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := Dial("tcp", l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			// Each goroutine needs its own owner client (clients are not
			// concurrent-safe); same master key, so same search tokens.
			cc, err := core.NewClient(core.LogarithmicSRC, cover.Domain{Bits: 10}, core.Options{
				SSE:       sse.Basic{},
				MasterKey: bytes.Repeat([]byte{9}, 32),
			})
			if err != nil {
				t.Errorf("client: %v", err)
				return
			}
			for rep := 0; rep < 3; rep++ {
				res, err := cc.QueryServer(conn, q)
				if err != nil {
					t.Errorf("remote query: %v", err)
					return
				}
				if len(res.Matches) != len(want) {
					t.Errorf("got %d matches, want %d", len(res.Matches), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	_ = c
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicBRC)
	serverEnd, clientEnd := net.Pipe()
	go func() { _ = ServeConn(serverEnd, idx) }()
	defer serverEnd.Close()
	defer clientEnd.Close()

	// Unknown request type → statusErr response, connection stays up.
	if err := writeFrame(clientEnd, 77, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readFrame(clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusErr || !strings.Contains(string(payload), "unknown request") {
		t.Errorf("status=%d payload=%q", status, payload)
	}
	// The connection still answers valid requests afterwards.
	conn := NewConn(clientEnd)
	meta, err := conn.Meta()
	if err != nil || meta.Kind != core.LogarithmicBRC {
		t.Errorf("meta after garbage: %+v, %v", meta, err)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, typeMeta, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write error = %v", err)
	}
	// A forged oversized header must be rejected on read.
	var hdr [4]byte
	hdr[0] = 0xFF
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	if _, _, err := readFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read error = %v", err)
	}
}

func TestTrapdoorWireRoundtrip(t *testing.T) {
	c, _, _ := testClientIndex(t, core.ConstantURC)
	td, err := c.Trapdoor(core.Range{Lo: 13, Hi: 200})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := td.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.UnmarshalTrapdoor(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Round() != td.Round() || len(back.GGM) != len(td.GGM) {
		t.Fatalf("roundtrip mismatch: %d GGM tokens vs %d", len(back.GGM), len(td.GGM))
	}
	for i := range td.GGM {
		if back.GGM[i] != td.GGM[i] {
			t.Fatal("GGM token corrupted")
		}
	}
	// Stag-based trapdoors too.
	c2, _, _ := testClientIndex(t, core.LogarithmicURC)
	td2, err := c2.Trapdoor(core.Range{Lo: 13, Hi: 200})
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := td2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := core.UnmarshalTrapdoor(blob2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back2.Stags) != len(td2.Stags) {
		t.Fatal("stag count corrupted")
	}
	for i := range td2.Stags {
		if back2.Stags[i] != td2.Stags[i] {
			t.Fatal("stag corrupted")
		}
	}
	// Garbage rejected.
	for _, bad := range [][]byte{nil, {0}, {9, 0, 0, 0, 0, 1}, blob[:len(blob)-3]} {
		if _, err := core.UnmarshalTrapdoor(bad); err == nil {
			t.Error("garbage trapdoor accepted")
		}
	}
}

func TestResponseWireRoundtrip(t *testing.T) {
	resp := &core.Response{Groups: [][][]byte{
		{[]byte("abc"), []byte("")},
		{},
		{[]byte{1, 2, 3, 4, 5, 6, 7, 8}},
	}}
	blob, err := resp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.UnmarshalResponse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Groups) != 3 || back.Items() != resp.Items() {
		t.Fatalf("roundtrip: %d groups, %d items", len(back.Groups), back.Items())
	}
	if !bytes.Equal(back.Groups[0][0], []byte("abc")) {
		t.Error("payload corrupted")
	}
	for _, bad := range [][]byte{{1}, blob[:len(blob)-2], append(blob, 9)} {
		if _, err := core.UnmarshalResponse(bad); err == nil {
			t.Error("garbage response accepted")
		}
	}
}
