package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"rsse/internal/core"
	"rsse/internal/fault"
)

// pipeDial returns a dial function that serves idx over a fresh
// net.Pipe per call, optionally passing the client end through a
// fault injector. dials counts how many conns were created.
func pipeDial(t *testing.T, idx core.Server, in *fault.Injector, dials *atomic.Int64) func(network, addr string) (*Conn, error) {
	t.Helper()
	return func(network, addr string) (*Conn, error) {
		serverEnd, clientEnd := net.Pipe()
		go func() { _ = ServeConn(serverEnd, idx) }()
		t.Cleanup(func() { serverEnd.Close(); clientEnd.Close() })
		var nc net.Conn = clientEnd
		if in != nil {
			nc = in.Wrap(nc)
		}
		if dials != nil {
			dials.Add(1)
		}
		return NewConn(nc), nil
	}
}

func waitDead(t *testing.T, c *Conn) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Dead() {
		if time.Now().After(deadline) {
			t.Fatal("conn never became dead")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadConnTypedError: every failure mode of a dead conn must be
// errors.Is-able as ErrConnDead — that is what retry logic keys on.
func TestDeadConnTypedError(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicBRC)

	t.Run("read loop died", func(t *testing.T) {
		conn := pipeServer(t, idx)
		conn.Close()
		waitDead(t, conn)
		if _, err := conn.Names(); !errors.Is(err, ErrConnDead) {
			t.Fatalf("err = %v, want ErrConnDead", err)
		}
		if err := conn.Err(); !errors.Is(err, ErrConnDead) {
			t.Fatalf("Err() = %v, want ErrConnDead", err)
		}
	})

	t.Run("in-flight request", func(t *testing.T) {
		serverEnd, clientEnd := net.Pipe()
		conn := NewConn(clientEnd)
		errc := make(chan error, 1)
		go func() {
			_, err := conn.Names()
			errc <- err
		}()
		// Swallow the request, then kill the conn under the waiter.
		buf := make([]byte, 64)
		serverEnd.Read(buf)
		serverEnd.Close()
		if err := <-errc; !errors.Is(err, ErrConnDead) {
			t.Fatalf("in-flight err = %v, want ErrConnDead", err)
		}
	})
}

// TestPoolEvictsDeadConn: the pool must never hand out a conn whose
// transport already died; it evicts and redials instead.
func TestPoolEvictsDeadConn(t *testing.T) {
	_, idx, _ := testClientIndex(t, core.LogarithmicBRC)
	var dials atomic.Int64
	pool := NewPoolFunc("pipe", pipeDial(t, idx, nil, &dials))
	defer pool.Close()

	c1, err := pool.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Names(); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	waitDead(t, c1)

	c2, err := pool.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("pool handed out the dead conn again")
	}
	if _, err := c2.Names(); err != nil {
		t.Fatalf("redialed conn: %v", err)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}

	// Evict is identity-checked: evicting the long-dead c1 must not
	// disturb the live replacement.
	pool.Evict("a", c1)
	c3, err := pool.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c2 {
		t.Fatal("stale Evict displaced the live conn")
	}

	// Evicting the live conn forces the next Get to dial fresh.
	pool.Evict("a", c2)
	c4, err := pool.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if c4 == c2 {
		t.Fatal("evicted conn still cached")
	}
}

// TestRedialerRetriesAcrossConnDeath: a scheduled mid-session conn
// kill must be invisible to the caller — the handle redials and the
// answer matches the fault-free one.
func TestRedialerRetriesAcrossConnDeath(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicBRC)
	// Conn 0 dies on its second write; conn 1 and later are clean.
	in := fault.New(fault.Plan{Seed: 11, Rules: []fault.Rule{
		{Conn: 0, Side: fault.Write, Action: fault.Close, AfterCalls: 2},
	}})
	var dials atomic.Int64
	pool := NewPoolFunc("pipe", pipeDial(t, idx, in, &dials))
	defer pool.Close()
	rd := NewRedialer(pool, "a", RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1,
	})
	h := rd.Default()

	q := core.Range{Lo: 100, Hi: 300}
	res, err := c.QueryServer(h, q) // meta = write 1, search = write 2 (killed), retried
	if err != nil {
		t.Fatal(err)
	}
	want := exact(tuples, q)
	if len(res.Matches) != len(want) {
		t.Fatalf("got %d matches, want %d", len(res.Matches), len(want))
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2 (one redial)", got)
	}
	if s := in.Stats(); s.Closes != 1 {
		t.Fatalf("injected closes = %d, want 1", s.Closes)
	}
}

// TestOverloadBacksOffWithoutFailover: ErrOverloaded means the server
// is alive; the handle must keep the conn (no redial, no failover)
// and just back off between attempts.
func TestOverloadBacksOffWithoutFailover(t *testing.T) {
	reg := NewRegistry()
	srv := drainServer(reg)
	var dials atomic.Int64
	pool := NewPoolFunc("pipe", func(network, addr string) (*Conn, error) {
		serverEnd, clientEnd := net.Pipe()
		go func() { _ = serveLoop(reg, serverEnd, srv, DispatchPooled, nil, 0) }()
		dials.Add(1)
		return NewConn(clientEnd), nil
	})
	defer pool.Close()
	rd := NewRedialer(pool, "a", RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1,
	})

	_, err := rd.Default().Meta()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 — overload must not trigger failover", got)
	}
}

// metaCountServer counts Meta calls and always fails them with a
// server-side error.
type metaCountServer struct{ calls atomic.Int64 }

func (s *metaCountServer) Meta() (core.IndexMeta, error) {
	s.calls.Add(1)
	return core.IndexMeta{}, fmt.Errorf("synthetic server failure")
}
func (s *metaCountServer) Search(*core.Trapdoor) (*core.Response, error) {
	return nil, fmt.Errorf("unreachable")
}
func (s *metaCountServer) Fetch(core.ID) ([]byte, bool, error) { return nil, false, nil }

// TestServerErrorNotRetried: a server-reported error means the
// transport worked; retrying it would just repeat the failure.
func TestServerErrorNotRetried(t *testing.T) {
	srv := &metaCountServer{}
	var dials atomic.Int64
	pool := NewPoolFunc("pipe", pipeDial(t, srv, nil, &dials))
	defer pool.Close()
	rd := NewRedialer(pool, "a", RetryPolicy{
		MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1,
	})

	_, err := rd.Default().Meta()
	if err == nil || errors.Is(err, ErrConnDead) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want plain server error", err)
	}
	if got := srv.calls.Load(); got != 1 {
		t.Fatalf("server saw %d meta calls, want 1 (no retry)", got)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1", got)
	}
}

// TestBlackHoleRecoveredByOpTimeout: a black-holed conn never fails
// its read loop, so only the per-op deadline can detect it. The
// handle must time the attempt out, replace the conn, and succeed.
func TestBlackHoleRecoveredByOpTimeout(t *testing.T) {
	c, idx, tuples := testClientIndex(t, core.LogarithmicBRC)
	in := fault.New(fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Conn: 0, Side: fault.Read, Action: fault.BlackHole},
	}})
	var dials atomic.Int64
	pool := NewPoolFunc("pipe", pipeDial(t, idx, in, &dials))
	defer pool.Close()
	rd := NewRedialer(pool, "a", RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		OpTimeout: 100 * time.Millisecond, Seed: 1,
	})
	h := rd.Default()

	q := core.Range{Lo: 0, Hi: 50}
	res, err := c.QueryServer(h, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := exact(tuples, q); len(res.Matches) != len(want) {
		t.Fatalf("got %d matches, want %d", len(res.Matches), len(want))
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2 (black hole evicted once)", got)
	}
}

// measureExchange runs one fault-free meta+search exchange and
// returns the query result plus the total server→client byte count —
// the sweep range for the kill-point test.
func measureExchange(t *testing.T, c *core.Client, idx core.Server, q core.Range) (*core.Result, int64) {
	t.Helper()
	in := fault.New(fault.Plan{Seed: 1})
	conn, err := pipeDial(t, idx, in, nil)("pipe", "a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := c.QueryServer(conn.Default(), q)
	if err != nil {
		t.Fatal(err)
	}
	return res, in.Stats().BytesRead
}

func sameResult(a, b *core.Result) bool {
	return reflect.DeepEqual(a.Matches, b.Matches) && reflect.DeepEqual(a.Raw, b.Raw)
}

// TestKillPointFrameOffsets severs the server→client stream at every
// byte offset of a recorded exchange — the transport mirror of the
// WAL torn-tail sweep. At each offset the bare client must return
// either the byte-identical result or a typed ErrConnDead, never a
// wrong answer; the resilient client must always recover the
// byte-identical result.
func TestKillPointFrameOffsets(t *testing.T) {
	c, idx, _ := testClientIndex(t, core.LogarithmicBRC)
	q := core.Range{Lo: 700, Hi: 740}
	oracle, total := measureExchange(t, c, idx, q)
	if total == 0 {
		t.Fatal("measured zero exchange bytes")
	}

	for off := int64(0); off <= total; off++ {
		in := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
			{Conn: 0, Side: fault.Read, Action: fault.Truncate, AtByte: off},
		}})

		// Bare conn: correct or typed death — never silent corruption.
		conn, err := pipeDial(t, idx, in, nil)("pipe", "a")
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.QueryServer(conn.Default(), q)
		if err != nil {
			if !errors.Is(err, ErrConnDead) {
				t.Fatalf("offset %d/%d: err = %v, want ErrConnDead", off, total, err)
			}
		} else if !sameResult(res, oracle) {
			t.Fatalf("offset %d/%d: result differs from oracle", off, total)
		}
		conn.Close()

		// Resilient client: conn 0 truncates at off, later conns are
		// clean; the caller must always see the oracle's bytes.
		pool := NewPoolFunc("pipe", pipeDial(t, idx, in, nil))
		rd := NewRedialer(pool, "a", RetryPolicy{
			MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond, Seed: off + 1,
		})
		res, err = c.QueryServer(rd.Default(), q)
		if err != nil {
			t.Fatalf("offset %d/%d: resilient query failed: %v", off, total, err)
		}
		if !sameResult(res, oracle) {
			t.Fatalf("offset %d/%d: resilient result differs from oracle", off, total)
		}
		pool.Close()
	}
}

// TestBatchStreamMidStreamDeath kills the server→client stream of the
// chunked batch-stream op at sampled offsets, including between
// chunks. A death mid-stream must surface a clean typed error — never
// a silently truncated result slice — and the resilient path must
// reassemble the oracle's exact responses on a fresh conn.
func TestBatchStreamMidStreamDeath(t *testing.T) {
	client, index := batchTestIndex(t, 211)
	var ts []*core.Trapdoor
	for i := 0; i < 40; i++ { // ≥ streamBatchThreshold: the streamed path
		lo := uint64(i * 20 % 900)
		tr, err := client.Trapdoor(core.Range{Lo: lo, Hi: lo + 60})
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, tr)
	}

	// Fault-free oracle + stream length, through a counting injector.
	in := fault.New(fault.Plan{Seed: 1})
	conn, err := pipeDial(t, index, in, nil)("pipe", "a")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := conn.Default().SearchBatchStreamContext(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != len(ts) {
		t.Fatalf("oracle has %d responses for %d trapdoors", len(oracle), len(ts))
	}
	total := in.Stats().BytesRead
	conn.Close()

	sameResponses := func(got []*core.Response) bool {
		if len(got) != len(oracle) {
			return false
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Groups, oracle[i].Groups) {
				return false
			}
		}
		return true
	}

	// ~40 evenly spaced offsets plus the exact end.
	step := total / 40
	if step == 0 {
		step = 1
	}
	for off := int64(0); off <= total; off += step {
		plan := fault.Plan{Seed: 1, Rules: []fault.Rule{
			{Conn: 0, Side: fault.Read, Action: fault.Truncate, AtByte: off},
		}}

		in := fault.New(plan)
		conn, err := pipeDial(t, index, in, nil)("pipe", "a")
		if err != nil {
			t.Fatal(err)
		}
		got, err := conn.Default().SearchBatchStreamContext(context.Background(), ts)
		if err != nil {
			if !errors.Is(err, ErrConnDead) {
				t.Fatalf("offset %d/%d: err = %v, want ErrConnDead", off, total, err)
			}
		} else if !sameResponses(got) {
			t.Fatalf("offset %d/%d: mid-stream death returned truncated/divergent responses", off, total)
		}
		conn.Close()

		pool := NewPoolFunc("pipe", pipeDial(t, index, fault.New(plan), nil))
		rd := NewRedialer(pool, "a", RetryPolicy{
			MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond, Seed: off + 1,
		})
		got, err = rd.Default().SearchBatchContext(context.Background(), ts)
		if err != nil {
			t.Fatalf("offset %d/%d: resilient batch failed: %v", off, total, err)
		}
		if !sameResponses(got) {
			t.Fatalf("offset %d/%d: resilient batch differs from oracle", off, total)
		}
		pool.Close()
	}
}
