package transport

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"rsse/internal/core"
)

// connConcurrency caps the requests one connection may have executing at
// once; further frames queue behind the semaphore. Requests from
// different connections are unbounded relative to each other.
const connConcurrency = 32

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("transport: server closed")

// Server serves a Registry of named indexes over any number of
// listeners. Every connection's requests are dispatched concurrently —
// one slow search does not block the connection's other requests — and
// Shutdown drains in-flight requests before closing connections.
type Server struct {
	reg *Registry

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	reqMu   sync.Mutex
	reqN    int
	down    bool
	drained chan struct{}
}

// NewServer creates a server over reg. The registry stays live: indexes
// registered or deregistered while serving are picked up per request.
func NewServer(reg *Registry) *Server {
	return &Server{
		reg:       reg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// closing reports whether Shutdown has begun.
func (s *Server) closing() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.down
}

// beginRequest admits a request into the in-flight set; false after
// Shutdown has begun.
func (s *Server) beginRequest() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.down {
		return false
	}
	s.reqN++
	return true
}

func (s *Server) endRequest() {
	s.reqMu.Lock()
	s.reqN--
	if s.reqN == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
	s.reqMu.Unlock()
}

// Serve accepts connections on l until the listener closes or Shutdown
// is called; it returns nil in both cases. Multiple Serve calls on
// different listeners may run concurrently.
func (s *Server) Serve(l net.Listener) error {
	if s.closing() {
		return ErrServerClosed
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.closing() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = serveLoop(s.reg, conn, s)
		}()
	}
}

// Shutdown gracefully stops the server: listeners close immediately, no
// new requests are admitted, and in-flight requests finish (their
// responses flushed) before the connections are closed. If ctx expires
// first, remaining connections are closed anyway and ctx's error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Wake connection readers blocked on their next frame so they stop
	// admitting requests.
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
	s.mu.Unlock()

	s.reqMu.Lock()
	s.down = true
	var drained chan struct{}
	if s.reqN > 0 {
		drained = make(chan struct{})
		s.drained = drained
	}
	s.reqMu.Unlock()

	var err error
	if drained != nil {
		select {
		case <-drained:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// Serve serves a single index under the default name until the listener
// is closed — the one-table deployment. For multiple named indexes or
// graceful shutdown, use NewServer with a Registry.
func Serve(l net.Listener, idx core.Server) error {
	return NewServer(singleRegistry(idx)).Serve(l)
}

// ServeConn answers requests for a single default-named index on one
// established connection until EOF or error (nil on clean EOF). Requests
// are still dispatched concurrently.
func ServeConn(conn io.ReadWriter, idx core.Server) error {
	return serveLoop(singleRegistry(idx), conn, nil)
}

// ServeConnRegistry is ServeConn over a full registry.
func ServeConnRegistry(conn io.ReadWriter, reg *Registry) error {
	return serveLoop(reg, conn, nil)
}

// serveLoop reads request frames from rw and dispatches each to its own
// goroutine (bounded per connection), serializing responses through one
// write lock. srv, when non-nil, tracks in-flight requests for graceful
// shutdown.
func serveLoop(reg *Registry, rw io.ReadWriter, srv *Server) error {
	br := bufio.NewReader(rw)
	var wmu sync.Mutex
	sem := make(chan struct{}, connConcurrency)
	var inFlight sync.WaitGroup
	// Let in-flight requests finish writing before the caller closes the
	// connection.
	defer inFlight.Wait()
	for {
		// Request bodies come from a pool and go back once the request's
		// response is on the wire (see bodyPool for why that is safe);
		// each loop turn takes a fresh buffer because earlier requests
		// may still be executing on their own goroutines.
		bp := bodyPool.Get().(*[]byte)
		body, err := readFrameInto(br, (*bp)[:0])
		if err != nil {
			bodyPool.Put(bp)
			if errors.Is(err, io.EOF) || (srv != nil && srv.closing()) {
				return nil
			}
			return err
		}
		*bp = body
		req, err := parseRequest(body)
		if err != nil {
			// Without a request id there is nothing to route an error to;
			// the framing is corrupt, drop the connection.
			bodyPool.Put(bp)
			return err
		}
		if srv != nil && !srv.beginRequest() {
			writeResponse(rw, &wmu, req.id, nil, errors.New("server shutting down"))
			bodyPool.Put(bp)
			continue
		}
		sem <- struct{}{}
		inFlight.Add(1)
		go func(req request, bp *[]byte) {
			defer func() {
				bodyPool.Put(bp)
				<-sem
				inFlight.Done()
				if srv != nil {
					srv.endRequest()
				}
			}()
			payload, herr := handleRequest(reg, req)
			writeResponse(rw, &wmu, req.id, payload, herr)
		}(req, bp)
	}
}

// writeResponse frames one response under the connection's write lock,
// staging the header in a pooled frame writer and shipping header and
// payload in a single vectored write. An oversized payload is converted
// to an err-response so the waiting request fails instead of hanging;
// other write errors are dropped (the read side of a dead connection
// surfaces them to serveLoop).
func writeResponse(w io.Writer, wmu *sync.Mutex, id uint32, payload []byte, herr error) {
	status := statusOK
	if herr != nil {
		status = statusErr
		payload = []byte(herr.Error())
	}
	fw := getFrameWriter()
	defer putFrameWriter(fw)
	wmu.Lock()
	defer wmu.Unlock()
	fw.begin()
	fw.stageUint32(id)
	fw.stageByte(status)
	fw.ref(payload)
	if err := fw.flush(w); err != nil {
		if !errors.Is(err, ErrFrameTooLarge) {
			return
		}
		// flush rejects oversized frames before writing any bytes, so
		// the stream is still clean for a substitute error response.
		fw.begin()
		fw.stageUint32(id)
		fw.stageByte(statusErr)
		fw.stageString(ErrFrameTooLarge.Error())
		_ = fw.flush(w)
	}
}
