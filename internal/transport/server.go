package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rsse/internal/core"
)

// connConcurrency caps the requests one connection may have executing
// at once. Under pooled dispatch it is the connection's worker-pool
// ceiling (workers spawn lazily up to it); under spawn dispatch it is
// the per-connection goroutine semaphore. Requests from different
// connections are unbounded relative to each other.
const connConcurrency = 32

// connQueue bounds the requests a connection may have parsed but not
// yet executing under pooled dispatch. A full queue blocks the
// connection's read loop — backpressure lands in the peer's socket
// buffer instead of as unbounded server-side goroutines or memory.
const connQueue = 128

// writeCoalesce caps how many completed responses the connection's
// writer folds into one vectored write when the connection is busy.
const writeCoalesce = 64

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("transport: server closed")

// DispatchMode selects how a connection's requests are executed.
type DispatchMode int

const (
	// DispatchPooled (the default) runs each connection's requests on a
	// bounded worker pool and coalesces completed responses into grouped
	// vectored writes: under high fan-in, throughput degrades into
	// backpressure instead of goroutine/scheduler thrash, and a busy
	// connection pays one writev per response group instead of one per
	// response.
	DispatchPooled DispatchMode = iota
	// DispatchSpawn is the legacy goroutine-per-request dispatch (one
	// spawned goroutine and one vectored write per request), kept so the
	// load harness can measure the pooled path against it.
	DispatchSpawn
)

// DispatchModeByName resolves "pooled" or "spawn".
func DispatchModeByName(name string) (DispatchMode, error) {
	switch name {
	case "pooled":
		return DispatchPooled, nil
	case "spawn":
		return DispatchSpawn, nil
	default:
		return 0, fmt.Errorf("transport: unknown dispatch mode %q (pooled|spawn)", name)
	}
}

func (m DispatchMode) String() string {
	if m == DispatchSpawn {
		return "spawn"
	}
	return "pooled"
}

// Server serves a Registry of named indexes over any number of
// listeners. Every connection's requests are dispatched concurrently —
// one slow search does not block the connection's other requests — and
// Shutdown drains in-flight requests before closing connections.
type Server struct {
	reg      *Registry
	dispatch DispatchMode

	// logger, when set, receives structured serving events (connection
	// lifecycle at Debug, protocol errors at Warn) with per-connection
	// attrs; slowQuery > 0 additionally logs every request whose
	// execution exceeds the threshold. Both are set before Serve.
	logger    *slog.Logger
	slowQuery time.Duration
	connSeq   atomic.Uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	reqMu   sync.Mutex
	reqN    int
	down    bool
	drained chan struct{}
}

// NewServer creates a server over reg. The registry stays live: indexes
// registered or deregistered while serving are picked up per request.
func NewServer(reg *Registry) *Server {
	return &Server{
		reg:       reg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// SetDispatch selects the connection dispatch mode. Call before Serve;
// connections pick the mode up when accepted.
func (s *Server) SetDispatch(m DispatchMode) { s.dispatch = m }

// SetLogger installs a structured logger for serving events: connection
// lifecycle at Debug, protocol errors at Warn, slow queries (see
// SetSlowQuery) at Warn. Call before Serve; nil (the default) disables
// serving logs.
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// SetSlowQuery sets the slow-query threshold: requests whose execution
// (queue wait excluded) takes at least d are logged at Warn with their
// op, index name, and duration. Zero (the default) disables the
// slow-query log. Call before Serve; requires SetLogger.
func (s *Server) SetSlowQuery(d time.Duration) { s.slowQuery = d }

// connLogger derives the per-connection logger with conn id and peer
// attrs, or nil when serving logs are off.
func (s *Server) connLogger(conn net.Conn) *slog.Logger {
	if s.logger == nil {
		return nil
	}
	return s.logger.With(
		slog.Uint64("conn", s.connSeq.Add(1)),
		slog.String("remote", conn.RemoteAddr().String()),
	)
}

// closing reports whether Shutdown has begun.
func (s *Server) closing() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.down
}

// beginRequest admits a request into the in-flight set; false after
// Shutdown has begun.
func (s *Server) beginRequest() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.down {
		return false
	}
	s.reqN++
	return true
}

func (s *Server) endRequest() {
	s.reqMu.Lock()
	s.reqN--
	if s.reqN == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
	s.reqMu.Unlock()
}

// Serve accepts connections on l until the listener closes or Shutdown
// is called; it returns nil in both cases. Multiple Serve calls on
// different listeners may run concurrently.
func (s *Server) Serve(l net.Listener) error {
	if s.closing() {
		return ErrServerClosed
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.closing() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		tm.conns.Inc()
		tm.connsTotal.Inc()
		log := s.connLogger(conn)
		if log != nil {
			log.Debug("connection accepted")
		}
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				tm.conns.Dec()
			}()
			err := serveLoop(s.reg, conn, s, s.dispatch, log, s.slowQuery)
			if log != nil {
				if err != nil {
					log.Warn("connection dropped", slog.Any("err", err))
				} else {
					log.Debug("connection closed")
				}
			}
		}()
	}
}

// Shutdown gracefully stops the server: listeners close immediately, no
// new requests are admitted, and in-flight requests finish (their
// responses flushed) before the connections are closed. If ctx expires
// first, remaining connections are closed anyway and ctx's error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Wake connection readers blocked on their next frame so they stop
	// admitting requests.
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
	s.mu.Unlock()

	s.reqMu.Lock()
	s.down = true
	var drained chan struct{}
	if s.reqN > 0 {
		drained = make(chan struct{})
		s.drained = drained
	}
	s.reqMu.Unlock()

	var err error
	if drained != nil {
		select {
		case <-drained:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// Serve serves a single index under the default name until the listener
// is closed — the one-table deployment. For multiple named indexes or
// graceful shutdown, use NewServer with a Registry.
func Serve(l net.Listener, idx core.Server) error {
	return NewServer(singleRegistry(idx)).Serve(l)
}

// ServeConn answers requests for a single default-named index on one
// established connection until EOF or error (nil on clean EOF). Requests
// are still dispatched concurrently.
func ServeConn(conn io.ReadWriter, idx core.Server) error {
	return serveLoop(singleRegistry(idx), conn, nil, DispatchPooled, nil, 0)
}

// ServeConnRegistry is ServeConn over a full registry.
func ServeConnRegistry(conn io.ReadWriter, reg *Registry) error {
	return serveLoop(reg, conn, nil, DispatchPooled, nil, 0)
}

// serveLoop reads request frames from rw and executes them concurrently
// under the selected dispatch mode. srv, when non-nil, tracks in-flight
// requests for graceful shutdown; log, when non-nil, receives serving
// events, and slow enables the slow-query log.
func serveLoop(reg *Registry, rw io.ReadWriter, srv *Server, mode DispatchMode, log *slog.Logger, slow time.Duration) error {
	if mode == DispatchSpawn {
		return serveLoopSpawn(reg, rw, srv, log, slow)
	}
	return serveLoopPooled(reg, rw, srv, log, slow)
}

// task is one admitted request awaiting a dispatcher worker.
type task struct {
	req request
	bp  *[]byte // pooled frame body backing req; recycled after the write
	enq time.Time
	// counted marks the request in srv's in-flight set (endRequest runs
	// after its response is written).
	counted bool
}

// completion is one executed request awaiting its response write.
type completion struct {
	id      uint32
	status  byte
	payload []byte
	bp      *[]byte
	counted bool
}

// dispatcher runs one connection's bounded worker pool and its response
// writer. Requests flow read loop → tasks → workers → compl → writer;
// the writer drains compl opportunistically and ships each drained
// group as one vectored write.
type dispatcher struct {
	reg *Registry
	srv *Server
	w   io.Writer

	log  *slog.Logger
	slow time.Duration

	tasks chan task
	compl chan completion

	spawned    int // workers started; touched only by the read loop
	workers    sync.WaitGroup
	writerDone chan struct{}
}

// serveLoopPooled reads request frames from rw and feeds them to the
// connection's dispatcher: a worker pool bounded at connConcurrency
// (spawned lazily — a sequential request stream costs one worker) over
// a queue bounded at connQueue. A full queue blocks the read loop, so
// overload turns into TCP backpressure on the peer instead of unbounded
// goroutine fan-out, and completed responses leave through one writer
// that coalesces bursts into grouped vectored writes.
func serveLoopPooled(reg *Registry, rw io.ReadWriter, srv *Server, log *slog.Logger, slow time.Duration) error {
	br := bufio.NewReader(rw)
	d := &dispatcher{
		reg:   reg,
		srv:   srv,
		w:     rw,
		log:   log,
		slow:  slow,
		tasks: make(chan task, connQueue),
		// compl never blocks the workers for long: its capacity covers
		// every admissible task plus the read loop's shed responses.
		compl:      make(chan completion, connQueue+connConcurrency+1),
		writerDone: make(chan struct{}),
	}
	go d.writeLoop()
	// Drain on exit: workers finish their tasks, then the writer flushes
	// every remaining response, before the caller closes the connection.
	defer func() {
		close(d.tasks)
		d.workers.Wait()
		close(d.compl)
		<-d.writerDone
	}()
	for {
		// Request bodies come from a pool and go back once the request's
		// response is on the wire (see bodyPool for why that is safe);
		// each loop turn takes a fresh buffer because earlier requests
		// may still be executing on the pool's workers.
		bp := bodyPool.Get().(*[]byte)
		body, err := readFrameInto(br, (*bp)[:0])
		if err != nil {
			bodyPool.Put(bp)
			if errors.Is(err, io.EOF) || (srv != nil && srv.closing()) {
				return nil
			}
			tm.frameErrs.Inc()
			return err
		}
		tm.bytesIn.Add(uint64(4 + len(body)))
		*bp = body
		req, err := parseRequest(body)
		if err != nil {
			// Without a request id there is nothing to route an error to;
			// the framing is corrupt, drop the connection.
			bodyPool.Put(bp)
			tm.frameErrs.Inc()
			return err
		}
		if srv != nil && !srv.beginRequest() {
			// Shed without executing: the overload response routes straight
			// to the writer, telling the peer the server is alive but
			// refusing work (vs a dead connection).
			tm.shed.Inc()
			d.compl <- completion{id: req.id, status: statusOverload,
				payload: []byte(overloadMsg), bp: bp}
			continue
		}
		tm.queueDepth.Inc()
		d.submit(task{req: req, bp: bp, enq: time.Now(), counted: srv != nil})
	}
}

// submit queues one task, growing the worker pool while the queue is
// backing up (up to connConcurrency workers). Blocks when the queue is
// full — that is the connection's backpressure.
func (d *dispatcher) submit(t task) {
	d.tasks <- t
	if d.spawned == 0 || (d.spawned < connConcurrency && len(d.tasks) > 0) {
		d.spawned++
		d.workers.Add(1)
		go d.worker()
	}
}

// worker executes tasks until the queue closes.
func (d *dispatcher) worker() {
	defer d.workers.Done()
	tm.workers.Inc()
	defer tm.workers.Dec()
	for t := range d.tasks {
		tm.queueDepth.Dec()
		tm.queueWait.Record(time.Since(t.enq))
		if t.req.op == opBatchStream {
			// Streamed responses leave chunk by chunk through the same
			// completion channel; see stream.go.
			d.streamTask(t)
			continue
		}
		c := completion{id: t.req.id, bp: t.bp, counted: t.counted}
		oi := opIndex(t.req.op)
		start := time.Now()
		payload, herr := handleRequest(d.reg, t.req)
		dur := time.Since(start)
		tm.requests[oi].Inc()
		tm.latency[oi].Record(dur)
		if herr != nil {
			tm.errors[oi].Inc()
			c.status = statusErr
			c.payload = []byte(herr.Error())
		} else {
			c.payload = payload
		}
		logSlowQuery(d.log, d.slow, t.req, dur, herr)
		d.compl <- c
	}
}

// logSlowQuery emits the slow-query Warn record when a request's
// execution crossed the threshold (and the connection has a logger).
func logSlowQuery(log *slog.Logger, slow time.Duration, req request, dur time.Duration, herr error) {
	if log == nil || slow <= 0 || dur < slow {
		return
	}
	attrs := []any{
		slog.Uint64("req", uint64(req.id)),
		slog.String("op", opLabel[opIndex(req.op)]),
		slog.String("index", req.name),
		slog.Duration("dur", dur),
	}
	if herr != nil {
		attrs = append(attrs, slog.Any("err", herr))
	}
	log.Warn("slow query", attrs...)
}

// writeLoop ships completed responses. Each wakeup drains whatever has
// completed (capped at writeCoalesce) and writes the whole group as one
// vectored write: an idle connection still gets one write per response,
// a busy one amortizes the syscall and the wakeup across the burst.
func (d *dispatcher) writeLoop() {
	defer close(d.writerDone)
	fw := getFrameWriter()
	defer putFrameWriter(fw)
	batch := make([]completion, 0, writeCoalesce)
	for c := range d.compl {
		batch = append(batch[:0], c)
		// Yield once before draining: completions arrive from workers
		// that are still runnable, and socket writes on a ready
		// descriptor never deschedule this goroutine. One scheduler
		// round lets the rest of the burst complete so the drain below
		// folds it into the same vectored write.
		runtime.Gosched()
	drain:
		for len(batch) < writeCoalesce {
			select {
			case c2, ok := <-d.compl:
				if !ok {
					break drain
				}
				batch = append(batch, c2)
			default:
				break drain
			}
		}
		d.writeBatch(fw, batch)
	}
}

// writeBatch stages the group's response frames and ships them with one
// vectored write. An oversized response is rolled back and replaced by
// an err-response so the waiting request fails instead of hanging;
// write errors are dropped (the read side of a dead connection surfaces
// them to serveLoopPooled). Request bodies recycle and in-flight
// accounting closes only after the group is on the wire, so graceful
// shutdown never closes a connection under a pending response.
func (d *dispatcher) writeBatch(fw *frameWriter, batch []completion) {
	fw.reset()
	out := 0
	for _, c := range batch {
		fw.beginFrame()
		fw.stageUint32(c.id)
		fw.stageByte(c.status)
		fw.ref(c.payload)
		if err := fw.endFrame(); err != nil {
			fw.beginFrame()
			fw.stageUint32(c.id)
			fw.stageByte(statusErr)
			fw.stageString(ErrFrameTooLarge.Error())
			_ = fw.endFrame()
			out += 4 + responseHeader + len(ErrFrameTooLarge.Error())
		} else {
			out += 4 + responseHeader + len(c.payload)
		}
		if c.status == statusOverload {
			tm.overload.Inc()
		}
	}
	_ = fw.flushAll(d.w)
	tm.bytesOut.Add(uint64(out))
	for _, c := range batch {
		if c.bp != nil {
			bodyPool.Put(c.bp)
		}
		if c.counted {
			d.srv.endRequest()
		}
	}
}

// serveLoopSpawn is the legacy dispatch: each request runs on its own
// spawned goroutine (bounded by a per-connection semaphore), and each
// response is its own vectored write under the connection's write lock.
// Kept selectable so the load harness can measure the pooled path
// against it; see DispatchSpawn.
func serveLoopSpawn(reg *Registry, rw io.ReadWriter, srv *Server, log *slog.Logger, slow time.Duration) error {
	br := bufio.NewReader(rw)
	var wmu sync.Mutex
	sem := make(chan struct{}, connConcurrency)
	var inFlight sync.WaitGroup
	// Let in-flight requests finish writing before the caller closes the
	// connection.
	defer inFlight.Wait()
	for {
		bp := bodyPool.Get().(*[]byte)
		body, err := readFrameInto(br, (*bp)[:0])
		if err != nil {
			bodyPool.Put(bp)
			if errors.Is(err, io.EOF) || (srv != nil && srv.closing()) {
				return nil
			}
			tm.frameErrs.Inc()
			return err
		}
		tm.bytesIn.Add(uint64(4 + len(body)))
		*bp = body
		req, err := parseRequest(body)
		if err != nil {
			bodyPool.Put(bp)
			tm.frameErrs.Inc()
			return err
		}
		if srv != nil && !srv.beginRequest() {
			tm.shed.Inc()
			writeStatusResponse(rw, &wmu, req.id, statusOverload, []byte(overloadMsg))
			bodyPool.Put(bp)
			continue
		}
		sem <- struct{}{}
		inFlight.Add(1)
		go func(req request, bp *[]byte) {
			defer func() {
				bodyPool.Put(bp)
				<-sem
				inFlight.Done()
				if srv != nil {
					srv.endRequest()
				}
			}()
			if req.op == opBatchStream {
				streamRequestSpawn(reg, rw, &wmu, req)
				return
			}
			oi := opIndex(req.op)
			start := time.Now()
			payload, herr := handleRequest(reg, req)
			dur := time.Since(start)
			tm.requests[oi].Inc()
			tm.latency[oi].Record(dur)
			if herr != nil {
				tm.errors[oi].Inc()
			}
			logSlowQuery(log, slow, req, dur, herr)
			writeResponse(rw, &wmu, req.id, payload, herr)
		}(req, bp)
	}
}

// writeResponse frames one response under the connection's write lock,
// staging the header in a pooled frame writer and shipping header and
// payload in a single vectored write. An oversized payload is converted
// to an err-response so the waiting request fails instead of hanging;
// other write errors are dropped (the read side of a dead connection
// surfaces them to serveLoop).
func writeResponse(w io.Writer, wmu *sync.Mutex, id uint32, payload []byte, herr error) {
	status := statusOK
	if herr != nil {
		status = statusErr
		payload = []byte(herr.Error())
	}
	writeStatusResponse(w, wmu, id, status, payload)
}

// writeStatusResponse is writeResponse with an explicit status byte, so
// the shed path can ship overload responses through the same framing.
func writeStatusResponse(w io.Writer, wmu *sync.Mutex, id uint32, status byte, payload []byte) {
	if status == statusOverload {
		tm.overload.Inc()
	}
	tm.bytesOut.Add(uint64(4 + responseHeader + len(payload)))
	fw := getFrameWriter()
	defer putFrameWriter(fw)
	wmu.Lock()
	defer wmu.Unlock()
	fw.begin()
	fw.stageUint32(id)
	fw.stageByte(status)
	fw.ref(payload)
	if err := fw.flush(w); err != nil {
		if !errors.Is(err, ErrFrameTooLarge) {
			return
		}
		// flush rejects oversized frames before writing any bytes, so
		// the stream is still clean for a substitute error response.
		fw.begin()
		fw.stageUint32(id)
		fw.stageByte(statusErr)
		fw.stageString(ErrFrameTooLarge.Error())
		_ = fw.flush(w)
	}
}
