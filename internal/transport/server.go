package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rsse/internal/core"
)

// connConcurrency caps the requests one connection may have executing
// at once. Under pooled dispatch it is the connection's worker-pool
// ceiling (workers spawn lazily up to it); under spawn dispatch it is
// the per-connection goroutine semaphore. Requests from different
// connections are unbounded relative to each other.
const connConcurrency = 32

// connQueue bounds the requests a connection may have parsed but not
// yet executing under pooled dispatch. A full queue blocks the
// connection's read loop — backpressure lands in the peer's socket
// buffer instead of as unbounded server-side goroutines or memory.
const connQueue = 128

// writeCoalesce caps how many completed responses the connection's
// writer folds into one vectored write when the connection is busy.
const writeCoalesce = 64

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("transport: server closed")

// DispatchMode selects how a connection's requests are executed.
type DispatchMode int

const (
	// DispatchPooled (the default) runs each connection's requests on a
	// bounded worker pool and coalesces completed responses into grouped
	// vectored writes: under high fan-in, throughput degrades into
	// backpressure instead of goroutine/scheduler thrash, and a busy
	// connection pays one writev per response group instead of one per
	// response.
	DispatchPooled DispatchMode = iota
	// DispatchSpawn is the legacy goroutine-per-request dispatch (one
	// spawned goroutine and one vectored write per request), kept so the
	// load harness can measure the pooled path against it.
	DispatchSpawn
)

// DispatchModeByName resolves "pooled" or "spawn".
func DispatchModeByName(name string) (DispatchMode, error) {
	switch name {
	case "pooled":
		return DispatchPooled, nil
	case "spawn":
		return DispatchSpawn, nil
	default:
		return 0, fmt.Errorf("transport: unknown dispatch mode %q (pooled|spawn)", name)
	}
}

func (m DispatchMode) String() string {
	if m == DispatchSpawn {
		return "spawn"
	}
	return "pooled"
}

// Server serves a Registry of named indexes over any number of
// listeners. Every connection's requests are dispatched concurrently —
// one slow search does not block the connection's other requests — and
// Shutdown drains in-flight requests before closing connections.
type Server struct {
	reg      *Registry
	dispatch DispatchMode

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	reqMu   sync.Mutex
	reqN    int
	down    bool
	drained chan struct{}
}

// NewServer creates a server over reg. The registry stays live: indexes
// registered or deregistered while serving are picked up per request.
func NewServer(reg *Registry) *Server {
	return &Server{
		reg:       reg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// SetDispatch selects the connection dispatch mode. Call before Serve;
// connections pick the mode up when accepted.
func (s *Server) SetDispatch(m DispatchMode) { s.dispatch = m }

// closing reports whether Shutdown has begun.
func (s *Server) closing() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.down
}

// beginRequest admits a request into the in-flight set; false after
// Shutdown has begun.
func (s *Server) beginRequest() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.down {
		return false
	}
	s.reqN++
	return true
}

func (s *Server) endRequest() {
	s.reqMu.Lock()
	s.reqN--
	if s.reqN == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
	s.reqMu.Unlock()
}

// Serve accepts connections on l until the listener closes or Shutdown
// is called; it returns nil in both cases. Multiple Serve calls on
// different listeners may run concurrently.
func (s *Server) Serve(l net.Listener) error {
	if s.closing() {
		return ErrServerClosed
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.closing() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = serveLoop(s.reg, conn, s, s.dispatch)
		}()
	}
}

// Shutdown gracefully stops the server: listeners close immediately, no
// new requests are admitted, and in-flight requests finish (their
// responses flushed) before the connections are closed. If ctx expires
// first, remaining connections are closed anyway and ctx's error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Wake connection readers blocked on their next frame so they stop
	// admitting requests.
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
	s.mu.Unlock()

	s.reqMu.Lock()
	s.down = true
	var drained chan struct{}
	if s.reqN > 0 {
		drained = make(chan struct{})
		s.drained = drained
	}
	s.reqMu.Unlock()

	var err error
	if drained != nil {
		select {
		case <-drained:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// Serve serves a single index under the default name until the listener
// is closed — the one-table deployment. For multiple named indexes or
// graceful shutdown, use NewServer with a Registry.
func Serve(l net.Listener, idx core.Server) error {
	return NewServer(singleRegistry(idx)).Serve(l)
}

// ServeConn answers requests for a single default-named index on one
// established connection until EOF or error (nil on clean EOF). Requests
// are still dispatched concurrently.
func ServeConn(conn io.ReadWriter, idx core.Server) error {
	return serveLoop(singleRegistry(idx), conn, nil, DispatchPooled)
}

// ServeConnRegistry is ServeConn over a full registry.
func ServeConnRegistry(conn io.ReadWriter, reg *Registry) error {
	return serveLoop(reg, conn, nil, DispatchPooled)
}

// serveLoop reads request frames from rw and executes them concurrently
// under the selected dispatch mode. srv, when non-nil, tracks in-flight
// requests for graceful shutdown.
func serveLoop(reg *Registry, rw io.ReadWriter, srv *Server, mode DispatchMode) error {
	if mode == DispatchSpawn {
		return serveLoopSpawn(reg, rw, srv)
	}
	return serveLoopPooled(reg, rw, srv)
}

// task is one admitted request awaiting a dispatcher worker.
type task struct {
	req request
	bp  *[]byte // pooled frame body backing req; recycled after the write
	// counted marks the request in srv's in-flight set (endRequest runs
	// after its response is written).
	counted bool
}

// completion is one executed request awaiting its response write.
type completion struct {
	id      uint32
	status  byte
	payload []byte
	bp      *[]byte
	counted bool
}

// dispatcher runs one connection's bounded worker pool and its response
// writer. Requests flow read loop → tasks → workers → compl → writer;
// the writer drains compl opportunistically and ships each drained
// group as one vectored write.
type dispatcher struct {
	reg *Registry
	srv *Server
	w   io.Writer

	tasks chan task
	compl chan completion

	spawned    int // workers started; touched only by the read loop
	workers    sync.WaitGroup
	writerDone chan struct{}
}

// serveLoopPooled reads request frames from rw and feeds them to the
// connection's dispatcher: a worker pool bounded at connConcurrency
// (spawned lazily — a sequential request stream costs one worker) over
// a queue bounded at connQueue. A full queue blocks the read loop, so
// overload turns into TCP backpressure on the peer instead of unbounded
// goroutine fan-out, and completed responses leave through one writer
// that coalesces bursts into grouped vectored writes.
func serveLoopPooled(reg *Registry, rw io.ReadWriter, srv *Server) error {
	br := bufio.NewReader(rw)
	d := &dispatcher{
		reg:   reg,
		srv:   srv,
		w:     rw,
		tasks: make(chan task, connQueue),
		// compl never blocks the workers for long: its capacity covers
		// every admissible task plus the read loop's shed responses.
		compl:      make(chan completion, connQueue+connConcurrency+1),
		writerDone: make(chan struct{}),
	}
	go d.writeLoop()
	// Drain on exit: workers finish their tasks, then the writer flushes
	// every remaining response, before the caller closes the connection.
	defer func() {
		close(d.tasks)
		d.workers.Wait()
		close(d.compl)
		<-d.writerDone
	}()
	for {
		// Request bodies come from a pool and go back once the request's
		// response is on the wire (see bodyPool for why that is safe);
		// each loop turn takes a fresh buffer because earlier requests
		// may still be executing on the pool's workers.
		bp := bodyPool.Get().(*[]byte)
		body, err := readFrameInto(br, (*bp)[:0])
		if err != nil {
			bodyPool.Put(bp)
			if errors.Is(err, io.EOF) || (srv != nil && srv.closing()) {
				return nil
			}
			return err
		}
		*bp = body
		req, err := parseRequest(body)
		if err != nil {
			// Without a request id there is nothing to route an error to;
			// the framing is corrupt, drop the connection.
			bodyPool.Put(bp)
			return err
		}
		if srv != nil && !srv.beginRequest() {
			// Shed without executing: the err-response routes straight to
			// the writer.
			d.compl <- completion{id: req.id, status: statusErr,
				payload: []byte("server shutting down"), bp: bp}
			continue
		}
		d.submit(task{req: req, bp: bp, counted: srv != nil})
	}
}

// submit queues one task, growing the worker pool while the queue is
// backing up (up to connConcurrency workers). Blocks when the queue is
// full — that is the connection's backpressure.
func (d *dispatcher) submit(t task) {
	d.tasks <- t
	if d.spawned == 0 || (d.spawned < connConcurrency && len(d.tasks) > 0) {
		d.spawned++
		d.workers.Add(1)
		go d.worker()
	}
}

// worker executes tasks until the queue closes.
func (d *dispatcher) worker() {
	defer d.workers.Done()
	for t := range d.tasks {
		c := completion{id: t.req.id, bp: t.bp, counted: t.counted}
		payload, herr := handleRequest(d.reg, t.req)
		if herr != nil {
			c.status = statusErr
			c.payload = []byte(herr.Error())
		} else {
			c.payload = payload
		}
		d.compl <- c
	}
}

// writeLoop ships completed responses. Each wakeup drains whatever has
// completed (capped at writeCoalesce) and writes the whole group as one
// vectored write: an idle connection still gets one write per response,
// a busy one amortizes the syscall and the wakeup across the burst.
func (d *dispatcher) writeLoop() {
	defer close(d.writerDone)
	fw := getFrameWriter()
	defer putFrameWriter(fw)
	batch := make([]completion, 0, writeCoalesce)
	for c := range d.compl {
		batch = append(batch[:0], c)
	drain:
		for len(batch) < writeCoalesce {
			select {
			case c2, ok := <-d.compl:
				if !ok {
					break drain
				}
				batch = append(batch, c2)
			default:
				break drain
			}
		}
		d.writeBatch(fw, batch)
	}
}

// writeBatch stages the group's response frames and ships them with one
// vectored write. An oversized response is rolled back and replaced by
// an err-response so the waiting request fails instead of hanging;
// write errors are dropped (the read side of a dead connection surfaces
// them to serveLoopPooled). Request bodies recycle and in-flight
// accounting closes only after the group is on the wire, so graceful
// shutdown never closes a connection under a pending response.
func (d *dispatcher) writeBatch(fw *frameWriter, batch []completion) {
	fw.reset()
	for _, c := range batch {
		fw.beginFrame()
		fw.stageUint32(c.id)
		fw.stageByte(c.status)
		fw.ref(c.payload)
		if err := fw.endFrame(); err != nil {
			fw.beginFrame()
			fw.stageUint32(c.id)
			fw.stageByte(statusErr)
			fw.stageString(ErrFrameTooLarge.Error())
			_ = fw.endFrame()
		}
	}
	_ = fw.flushAll(d.w)
	for _, c := range batch {
		if c.bp != nil {
			bodyPool.Put(c.bp)
		}
		if c.counted {
			d.srv.endRequest()
		}
	}
}

// serveLoopSpawn is the legacy dispatch: each request runs on its own
// spawned goroutine (bounded by a per-connection semaphore), and each
// response is its own vectored write under the connection's write lock.
// Kept selectable so the load harness can measure the pooled path
// against it; see DispatchSpawn.
func serveLoopSpawn(reg *Registry, rw io.ReadWriter, srv *Server) error {
	br := bufio.NewReader(rw)
	var wmu sync.Mutex
	sem := make(chan struct{}, connConcurrency)
	var inFlight sync.WaitGroup
	// Let in-flight requests finish writing before the caller closes the
	// connection.
	defer inFlight.Wait()
	for {
		bp := bodyPool.Get().(*[]byte)
		body, err := readFrameInto(br, (*bp)[:0])
		if err != nil {
			bodyPool.Put(bp)
			if errors.Is(err, io.EOF) || (srv != nil && srv.closing()) {
				return nil
			}
			return err
		}
		*bp = body
		req, err := parseRequest(body)
		if err != nil {
			bodyPool.Put(bp)
			return err
		}
		if srv != nil && !srv.beginRequest() {
			writeResponse(rw, &wmu, req.id, nil, errors.New("server shutting down"))
			bodyPool.Put(bp)
			continue
		}
		sem <- struct{}{}
		inFlight.Add(1)
		go func(req request, bp *[]byte) {
			defer func() {
				bodyPool.Put(bp)
				<-sem
				inFlight.Done()
				if srv != nil {
					srv.endRequest()
				}
			}()
			payload, herr := handleRequest(reg, req)
			writeResponse(rw, &wmu, req.id, payload, herr)
		}(req, bp)
	}
}

// writeResponse frames one response under the connection's write lock,
// staging the header in a pooled frame writer and shipping header and
// payload in a single vectored write. An oversized payload is converted
// to an err-response so the waiting request fails instead of hanging;
// other write errors are dropped (the read side of a dead connection
// surfaces them to serveLoop).
func writeResponse(w io.Writer, wmu *sync.Mutex, id uint32, payload []byte, herr error) {
	status := statusOK
	if herr != nil {
		status = statusErr
		payload = []byte(herr.Error())
	}
	fw := getFrameWriter()
	defer putFrameWriter(fw)
	wmu.Lock()
	defer wmu.Unlock()
	fw.begin()
	fw.stageUint32(id)
	fw.stageByte(status)
	fw.ref(payload)
	if err := fw.flush(w); err != nil {
		if !errors.Is(err, ErrFrameTooLarge) {
			return
		}
		// flush rejects oversized frames before writing any bytes, so
		// the stream is still clean for a substitute error response.
		fw.begin()
		fw.stageUint32(id)
		fw.stageByte(statusErr)
		fw.stageString(ErrFrameTooLarge.Error())
		_ = fw.flush(w)
	}
}
