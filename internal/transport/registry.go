package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"rsse/internal/core"
)

// DefaultIndex is the registry name single-index deployments serve under;
// Serve, ServeConn and the owner-side Conn.Default use it implicitly.
const DefaultIndex = "default"

// maxNameLen bounds an index name on the wire (one length byte).
const maxNameLen = 255

// Errors reported by the registry.
var (
	ErrUnknownIndex   = errors.New("transport: unknown index")
	ErrDuplicateIndex = errors.New("transport: index name already registered")
	ErrBadIndexName   = errors.New("transport: index name must be 1..255 bytes")
)

// Registry is a concurrent-safe collection of named indexes served by one
// process: independent tables, LSM epochs, or any mix. Served indexes
// must be safe for concurrent reads (a *core.Index is — it is immutable
// after build), because the server dispatches requests from every
// connection against them in parallel.
//
// Registry implements the owner-side Directory notion of the lsm package
// via Lookup, so a local manager can query its registered epochs through
// exactly the interface a remote connection offers.
type Registry struct {
	mu sync.RWMutex
	m  map[string]core.Server
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]core.Server)}
}

// Register adds an index under name. Names are 1..255 bytes and must be
// unique; registering a live registry is safe at any time, including
// while serving.
func (r *Registry) Register(name string, s core.Server) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("%w: %q", ErrBadIndexName, name)
	}
	if s == nil {
		return errors.New("transport: cannot register a nil index")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateIndex, name)
	}
	r.m[name] = s
	return nil
}

// Deregister removes name, reporting whether it was present. In-flight
// requests against the index complete; new requests fail with
// ErrUnknownIndex.
func (r *Registry) Deregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[name]
	delete(r.m, name)
	return ok
}

// Lookup resolves a served index by name.
func (r *Registry) Lookup(name string) (core.Server, error) {
	r.mu.RLock()
	s, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
	}
	return s, nil
}

// Names lists the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered indexes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// singleRegistry wraps one index under the default name, for the
// single-index compatibility entry points.
func singleRegistry(idx core.Server) *Registry {
	r := NewRegistry()
	if err := r.Register(DefaultIndex, idx); err != nil {
		panic("transport: " + err.Error()) // DefaultIndex is a valid name
	}
	return r
}
