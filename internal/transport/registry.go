package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rsse/internal/core"
)

// DefaultIndex is the registry name single-index deployments serve under;
// Serve, ServeConn and the owner-side Conn.Default use it implicitly.
const DefaultIndex = "default"

// maxNameLen bounds an index name on the wire (one length byte).
const maxNameLen = 255

// Errors reported by the registry.
var (
	ErrUnknownIndex   = errors.New("transport: unknown index")
	ErrDuplicateIndex = errors.New("transport: index name already registered")
	ErrBadIndexName   = errors.New("transport: index name must be 1..255 bytes")
)

// Registry is a concurrent-safe collection of named indexes served by one
// process: independent tables, LSM epochs, or any mix. Served indexes
// must be safe for concurrent reads (a *core.Index is — it is immutable
// after build), because the server dispatches requests from every
// connection against them in parallel.
//
// Indexes register either eagerly (Register, with a live core.Server) or
// lazily (RegisterLazy, with an opener the registry invokes on the first
// request that addresses the name). Lazy registration is what lets one
// server front a directory holding far more index bytes than RAM: names
// appear immediately, files open — typically as zero-copy mmaps via
// core.OpenIndexFile — only when traffic arrives.
//
// Registry implements the owner-side Directory notion of the lsm package
// via Lookup, so a local manager can query its registered epochs through
// exactly the interface a remote connection offers.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*regEntry
	// w is the update namespace: writable dynamic stores addressed by
	// the update wire ops (RegisterUpdatable), independent of the read
	// indexes in m.
	w map[string]Updatable
}

// regEntry is one served name: either a live server, or an opener that
// resolves to one on first use. The open result (or error) is cached, so
// each name's file is opened at most once. ob carries the entry's
// pre-resolved per-index metric children (request counts, leakage
// families, resident bytes), so the request path pays no label lookups.
type regEntry struct {
	mu   sync.Mutex
	open func() (core.Server, error)
	s    core.Server
	err  error
	ob   *indexObs
}

// resolve returns the entry's server, invoking a pending opener once.
// Lazy opens are timed into rsse_index_open_seconds, and a resolved
// server's resident bytes land in the per-index gauge.
func (e *regEntry) resolve() (core.Server, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.open != nil {
		start := time.Now()
		e.s, e.err = e.open()
		if e.err == nil && e.s == nil {
			e.err = errors.New("transport: lazy opener returned a nil index")
		}
		e.open = nil // open exactly once; the outcome is cached either way
		ixOpenSeconds.Record(time.Since(start))
		if e.err == nil {
			e.observeResident()
		}
	}
	return e.s, e.err
}

// observeResident publishes the resolved server's resident bytes; only
// servers that report stats (a *core.Index does) contribute. Callers
// hold e.mu or know e.s is immutable.
func (e *regEntry) observeResident() {
	if xs, ok := e.s.(interface{ Stats() core.IndexStats }); ok {
		e.ob.resident.Set(int64(xs.Stats().Resident))
	}
}

// loaded reports the resolved server without triggering an open and
// without waiting on one: if an opener holds the entry locked right
// now, the entry simply reports as not-yet-loaded.
func (e *regEntry) loaded() (core.Server, error, bool) {
	if !e.mu.TryLock() {
		return nil, nil, false
	}
	defer e.mu.Unlock()
	return e.s, e.err, e.open == nil
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*regEntry)}
}

func (r *Registry) add(name string, e *regEntry) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("%w: %q", ErrBadIndexName, name)
	}
	e.ob = newIndexObs(name)
	if e.s != nil {
		e.observeResident()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateIndex, name)
	}
	r.m[name] = e
	return nil
}

// Register adds an index under name. Names are 1..255 bytes and must be
// unique; registering on a live registry is safe at any time, including
// while serving.
func (r *Registry) Register(name string, s core.Server) error {
	if s == nil {
		return errors.New("transport: cannot register a nil index")
	}
	return r.add(name, &regEntry{s: s})
}

// RegisterLazy adds a name whose index opens on first use: the first
// request addressing it invokes open (concurrent requests wait), and the
// result — server or error — is cached for every later request. A failed
// open therefore marks the name broken rather than hammering the opener;
// Deregister and re-register to retry after repairing the underlying
// file.
func (r *Registry) RegisterLazy(name string, open func() (core.Server, error)) error {
	if open == nil {
		return errors.New("transport: cannot register a nil opener")
	}
	return r.add(name, &regEntry{open: open})
}

// Deregister removes name, reporting whether it was present. In-flight
// requests against the index complete; new requests fail with
// ErrUnknownIndex. The registry never closes served indexes — owners of
// file-backed indexes close them once in-flight use is done.
func (r *Registry) Deregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[name]
	delete(r.m, name)
	return ok
}

// Lookup resolves a served index by name, opening it first if it was
// registered lazily.
func (r *Registry) Lookup(name string) (core.Server, error) {
	s, _, err := r.lookupServing(name)
	return s, err
}

// lookupServing is Lookup plus the entry's per-index metric set, for
// the request path.
func (r *Registry) lookupServing(name string) (core.Server, *indexObs, error) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
	}
	s, err := e.resolve()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %q: %v", ErrUnknownIndex, name, err)
	}
	return s, e.ob, nil
}

// Names lists the registered names in sorted order, lazy entries
// included.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered indexes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// IndexStat is one registry entry's serving state: whether it has been
// opened, the cached open error if opening failed, and — for servers
// that expose them (a *core.Index does) — the index's operational stats.
type IndexStat struct {
	Name   string
	Loaded bool
	Err    error
	Stats  core.IndexStats // zero unless Loaded and the server reports stats
}

// Stats reports every registered index's serving state, sorted by name.
// It never triggers a lazy open and never waits on one in flight —
// observing a fleet must stay free; an index mid-open reports as not
// yet loaded.
func (r *Registry) Stats() []IndexStat {
	r.mu.RLock()
	entries := make(map[string]*regEntry, len(r.m))
	for name, e := range r.m {
		entries[name] = e
	}
	r.mu.RUnlock()
	out := make([]IndexStat, 0, len(entries))
	for name, e := range entries {
		st := IndexStat{Name: name}
		if s, err, done := e.loaded(); done {
			st.Err = err
			if err == nil {
				st.Loaded = true
				if xs, ok := s.(interface{ Stats() core.IndexStats }); ok {
					st.Stats = xs.Stats()
				}
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// singleRegistry wraps one index under the default name, for the
// single-index compatibility entry points.
func singleRegistry(idx core.Server) *Registry {
	r := NewRegistry()
	if err := r.Register(DefaultIndex, idx); err != nil {
		panic("transport: " + err.Error()) // DefaultIndex is a valid name
	}
	return r
}
