// Package transport runs the RSSE query protocol over a network
// connection, so the data owner and the untrusted server can live in
// different processes (or machines). The server side serves a Registry of
// named encrypted indexes; the client side hands out per-index handles
// implementing core.Server, so the owner's existing query logic works
// against any served index unchanged.
//
// The protocol is a request/response framing over any stream connection
// (TCP, unix sockets, net.Pipe in tests), multiplexed by request id so
// one connection carries many requests concurrently and responses return
// as they complete — a slow search does not block the connection's other
// requests, and one handle is safe for concurrent use:
//
//	frame    := len(u32, big-endian) body          (len counts the body)
//	request  := reqID(u32) op(u8) nameLen(u8) name payload
//	response := reqID(u32) status(u8) payload
//	ops:      meta(1), search(trapdoor wire, 2), fetch(id, 3), names(4),
//	          batch-query(trapdoor batch wire, 5), update(6),
//	          dyn-flush(7), dyn-query(8), batch-stream(trapdoor batch
//	          wire, 9)
//	status:   ok(0) payload | err(1) message | overload(2) message |
//	          partial(3) chunk
//
// The batch-stream op is batch-query with a streamed response: the
// server searches the batch in fixed-size sub-batches and ships each
// finished sub-batch immediately as a partial(3) frame (payload: the
// usual response-group wire, a count followed by that many response
// wires), terminating the stream with an ok(0) frame carrying the last
// chunk — so the owner decrypts and filters early results while the
// server is still searching late ones, and no frame ever carries the
// whole batch. An err(1) frame aborts the stream; partial results are
// discarded. See stream.go.
//
// The overload status distinguishes "server refused this request" from
// "server gone": a draining server answers shed requests with status 2
// (surfaced to callers as ErrOverloaded) while the connection stays up,
// so clients can back off or fail over instead of treating the shed as
// a dead peer.
//
// The batch-query op carries several trapdoors in one frame and answers
// with the matching responses in one frame; the server searches the
// batch's tokens concurrently. It is how a whole multi-range batch (see
// core.Client.QueryBatch) costs one round trip per round instead of one
// per range.
//
// For served read indexes, exactly the protocol messages of the paper
// cross the wire: trapdoors owner→server, opaque result groups and
// encrypted tuples server→owner. The transport adds no leakage beyond
// message lengths, timing, and the (public) name of the index each
// request addresses. The update ops (6-8) are different: they address a
// writable dynamic store the serving process hosts with its keys — an
// owner-side durable write gateway, not the paper's untrusted server —
// so updates and dyn-query results cross in plaintext (see update.go).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rsse/internal/core"
)

// MaxFrame bounds a single frame; larger frames abort the connection.
// Responses carry whole result groups, so the bound is generous.
const MaxFrame = 1 << 28 // 256 MiB

// Request op codes and response status codes.
const (
	opMeta        byte = 1
	opSearch      byte = 2
	opFetch       byte = 3
	opNames       byte = 4
	opBatchQuery  byte = 5
	opUpdate      byte = 6
	opDynFlush    byte = 7
	opDynQuery    byte = 8
	opBatchStream byte = 9

	statusOK       byte = 0
	statusErr      byte = 1
	statusOverload byte = 2
	// statusPartial marks a streamed-response chunk: more frames with the
	// same request id follow, terminated by a statusOK (carrying the last
	// chunk) or a statusErr. Only opBatchStream produces it.
	statusPartial byte = 3
)

// ErrOverloaded is returned to a caller whose request the server shed
// (overload response, status 2): the server is alive but refusing new
// work — during a graceful-shutdown drain, for instance. Distinct from
// a connection error so clients can back off or fail over.
var ErrOverloaded = errors.New("transport: server overloaded, request shed")

// ErrConnDead marks every failure caused by the connection itself
// dying — a failed write, a lost read loop, a request failed by the
// demultiplexer's shutdown. It is distinct from server-reported
// errors (which mean the transport is fine) so retry logic can tell
// "redial and try again" from "the server rejected this": a dead conn
// is safely retryable for idempotent reads, a server error is not.
var ErrConnDead = errors.New("transport: connection dead")

// overloadMsg is the payload of a drain-shed overload response.
const overloadMsg = "server draining"

// requestHeader is the fixed prefix of a request body: id, op, name
// length.
const requestHeader = 4 + 1 + 1

// responseHeader is the fixed prefix of a response body: id, status.
const responseHeader = 4 + 1

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds limit")

// writeFrame writes one length-prefixed frame assembled from parts.
func writeFrame(w io.Writer, parts ...[]byte) error {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// request is one parsed request frame.
type request struct {
	id      uint32
	op      byte
	name    string
	payload []byte
}

// parseRequest splits a request body.
func parseRequest(body []byte) (request, error) {
	if len(body) < requestHeader {
		return request{}, fmt.Errorf("transport: short request (%d bytes)", len(body))
	}
	nameLen := int(body[5])
	if len(body) < requestHeader+nameLen {
		return request{}, fmt.Errorf("transport: request truncates index name")
	}
	return request{
		id:      binary.BigEndian.Uint32(body[:4]),
		op:      body[4],
		name:    string(body[requestHeader : requestHeader+nameLen]),
		payload: body[requestHeader+nameLen:],
	}, nil
}

// appendRequest assembles a request body.
func appendRequest(id uint32, op byte, name string, payload []byte) []byte {
	body := make([]byte, 0, requestHeader+len(name)+len(payload))
	body = binary.BigEndian.AppendUint32(body, id)
	body = append(body, op, byte(len(name)))
	body = append(body, name...)
	return append(body, payload...)
}

// handleRequest executes one request against the registry. The returned
// payload is the ok-response body; a non-nil error becomes an
// err-response, leaving the connection up. Per-index counters — request
// counts and the server-observed leakage families — are incremented
// here, where the request's name, tokens and result sizes are all in
// hand; the per-index children are resolved once at registration, so
// the accounting is atomic adds only.
func handleRequest(reg *Registry, req request) ([]byte, error) {
	if req.op >= opUpdate && req.op <= opDynQuery {
		// Update ops route to the writable-store namespace.
		return handleUpdateRequest(reg, req)
	}
	if req.op == opNames {
		names := reg.Names()
		out := binary.BigEndian.AppendUint32(nil, uint32(len(names)))
		for _, n := range names {
			out = append(out, byte(len(n)))
			out = append(out, n...)
		}
		return out, nil
	}
	idx, ob, err := reg.lookupServing(req.name)
	if err != nil {
		return nil, err
	}
	switch req.op {
	case opMeta:
		meta, err := idx.Meta()
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, 11)
		out = append(out, byte(meta.Kind), meta.DomainBits, meta.PosBits)
		return binary.BigEndian.AppendUint64(out, uint64(meta.N)), nil
	case opSearch:
		t, err := core.UnmarshalTrapdoor(req.payload)
		if err != nil {
			return nil, err
		}
		ob.queries.Inc()
		ob.tokens.Add(uint64(t.Tokens()))
		ob.tokenBytes.Add(uint64(t.Bytes()))
		resp, err := idx.Search(t)
		if err != nil {
			return nil, err
		}
		ob.respItems.Add(uint64(resp.Items()))
		return resp.MarshalBinary()
	case opBatchQuery:
		ts, err := core.UnmarshalTrapdoors(req.payload)
		if err != nil {
			return nil, err
		}
		ob.batches.Inc()
		ob.queries.Add(uint64(len(ts)))
		for _, t := range ts {
			ob.tokens.Add(uint64(t.Tokens()))
			ob.tokenBytes.Add(uint64(t.Bytes()))
		}
		var resps []*core.Response
		if bs, ok := idx.(core.BatchSearcher); ok {
			// A served *core.Index searches the batch's tokens
			// concurrently.
			resps, err = bs.SearchBatch(ts)
		} else {
			resps = make([]*core.Response, len(ts))
			for i, t := range ts {
				if resps[i], err = idx.Search(t); err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, err
		}
		for _, resp := range resps {
			ob.respItems.Add(uint64(resp.Items()))
		}
		return core.MarshalResponses(resps)
	case opFetch:
		if len(req.payload) != 8 {
			return nil, fmt.Errorf("transport: fetch payload must be 8 bytes")
		}
		ob.fetches.Inc()
		ob.rawIDs.Inc()
		ct, ok, err := idx.Fetch(binary.BigEndian.Uint64(req.payload))
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, 1+len(ct))
		if ok {
			out = append(out, 1)
			out = append(out, ct...)
		} else {
			out = append(out, 0)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("transport: unknown request type %d", req.op)
	}
}

// parseNames decodes an opNames response.
func parseNames(payload []byte) ([]string, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("transport: short names response")
	}
	count := int(binary.BigEndian.Uint32(payload))
	payload = payload[4:]
	// The server is untrusted: cap the allocation hint by the bytes
	// actually present (each name costs at least its length byte).
	out := make([]string, 0, min(count, len(payload)))
	for i := 0; i < count; i++ {
		if len(payload) < 1 {
			return nil, fmt.Errorf("transport: names response truncated")
		}
		n := int(payload[0])
		if len(payload) < 1+n {
			return nil, fmt.Errorf("transport: names response truncated")
		}
		out = append(out, string(payload[1:1+n]))
		payload = payload[1+n:]
	}
	return out, nil
}
