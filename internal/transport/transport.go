// Package transport runs the RSSE query protocol over a network
// connection, so the data owner and the untrusted server can live in
// different processes (or machines). The server side serves one encrypted
// index; the client side implements core.Server, so the owner's existing
// query logic works against it unchanged.
//
// The protocol is a simple length-prefixed request/response framing over
// any stream connection (TCP, unix sockets, net.Pipe in tests):
//
//	frame  := len(u32, big-endian) type(u8) payload
//	request types: meta, search (trapdoor wire), fetch (id)
//	response:      ok(0) payload | err(1) message
//
// Exactly the protocol messages of the paper cross the wire: trapdoors
// owner→server, opaque result groups and encrypted tuples server→owner.
// The transport adds no leakage beyond message lengths and timing.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"rsse/internal/core"
)

// MaxFrame bounds a single frame; larger frames abort the connection.
// Responses carry whole result groups, so the bound is generous.
const MaxFrame = 1 << 28 // 256 MiB

// Request/response type tags.
const (
	typeMeta   byte = 1
	typeSearch byte = 2
	typeFetch  byte = 3

	statusOK  byte = 0
	statusErr byte = 1
)

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds limit")

// writeFrame writes one framed message.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed message.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Serve accepts connections on l and serves the index until the listener
// is closed. Each connection is handled on its own goroutine; *core.Index
// is read-only after build, so connections proceed concurrently.
func Serve(l net.Listener, idx core.Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = ServeConn(conn, idx)
		}()
	}
}

// ServeConn answers requests on a single connection until EOF or error.
func ServeConn(conn io.ReadWriter, idx core.Server) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := handle(idx, typ, payload)
		if err != nil {
			if werr := writeFrame(bw, statusErr, []byte(err.Error())); werr != nil {
				return werr
			}
		} else {
			if werr := writeFrame(bw, statusOK, resp); werr != nil {
				return werr
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// handle dispatches one request against the index.
func handle(idx core.Server, typ byte, payload []byte) ([]byte, error) {
	switch typ {
	case typeMeta:
		meta, err := idx.Meta()
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, 11)
		out = append(out, byte(meta.Kind), meta.DomainBits, meta.PosBits)
		out = binary.BigEndian.AppendUint64(out, uint64(meta.N))
		return out, nil
	case typeSearch:
		t, err := core.UnmarshalTrapdoor(payload)
		if err != nil {
			return nil, err
		}
		resp, err := idx.Search(t)
		if err != nil {
			return nil, err
		}
		return resp.MarshalBinary()
	case typeFetch:
		if len(payload) != 8 {
			return nil, fmt.Errorf("transport: fetch payload must be 8 bytes")
		}
		ct, ok, err := idx.Fetch(binary.BigEndian.Uint64(payload))
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, 1+len(ct))
		if ok {
			out = append(out, 1)
			out = append(out, ct...)
		} else {
			out = append(out, 0)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("transport: unknown request type %d", typ)
	}
}

// Conn is the owner-side handle to a remote index. It implements
// core.Server, so core.Client.QueryServer works against it directly.
// Requests on one Conn are serialized; open several connections for
// parallel queries.
type Conn struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	br   *bufio.Reader
	bw   *bufio.Writer

	metaOnce sync.Once
	meta     core.IndexMeta
	metaErr  error
}

// NewConn wraps an established stream connection.
func NewConn(conn io.ReadWriteCloser) *Conn {
	return &Conn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Dial connects to a serving address ("tcp", "host:port" etc.).
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Conn) roundTrip(typ byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	status, resp, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return resp, nil
	case statusErr:
		return nil, fmt.Errorf("transport: server: %s", resp)
	default:
		return nil, fmt.Errorf("transport: bad response status %d", status)
	}
}

// Meta implements core.Server; the result is cached for the connection's
// lifetime (index metadata is immutable).
func (c *Conn) Meta() (core.IndexMeta, error) {
	c.metaOnce.Do(func() {
		resp, err := c.roundTrip(typeMeta, nil)
		if err != nil {
			c.metaErr = err
			return
		}
		if len(resp) != 11 {
			c.metaErr = fmt.Errorf("transport: bad meta response length %d", len(resp))
			return
		}
		c.meta = core.IndexMeta{
			Kind:       core.Kind(resp[0]),
			DomainBits: resp[1],
			PosBits:    resp[2],
			N:          int(binary.BigEndian.Uint64(resp[3:])),
		}
	})
	return c.meta, c.metaErr
}

// Search implements core.Server.
func (c *Conn) Search(t *core.Trapdoor) (*core.Response, error) {
	payload, err := t.MarshalBinary()
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(typeSearch, payload)
	if err != nil {
		return nil, err
	}
	return core.UnmarshalResponse(resp)
}

// Fetch implements core.Server.
func (c *Conn) Fetch(id core.ID) ([]byte, bool, error) {
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], id)
	resp, err := c.roundTrip(typeFetch, payload[:])
	if err != nil {
		return nil, false, err
	}
	if len(resp) < 1 {
		return nil, false, fmt.Errorf("transport: empty fetch response")
	}
	if resp[0] == 0 {
		return nil, false, nil
	}
	return resp[1:], true, nil
}
