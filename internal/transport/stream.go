package transport

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"rsse/internal/core"
)

// streamChunkTokens is how many trapdoors the server searches (and
// serializes) per streamed chunk. Within a chunk the index's batch
// concurrency still applies; across chunks the stream is sequential,
// which is what bounds the frame size and lets early chunks leave the
// wire while late ones are still searching.
const streamChunkTokens = 16

// streamBatchThreshold is the batch size at which the client switches
// from the single-frame batch-query op to the streamed op. Below it a
// stream's extra frames cost more than they save; above it the owner
// pipelines decryption against the server's remaining search work.
const streamBatchThreshold = 32

// handleBatchStream executes one batch-stream request, handing each
// finished chunk to emit as (status, payload): statusPartial for every
// chunk but the last, statusOK for the last, statusErr (with the
// message as payload) on failure at any point. emit runs on the
// calling goroutine; the dispatch integration decides how its frames
// reach the wire.
func handleBatchStream(reg *Registry, req request, emit func(status byte, payload []byte)) {
	fail := func(err error) { emit(statusErr, []byte(err.Error())) }
	idx, ob, err := reg.lookupServing(req.name)
	if err != nil {
		fail(err)
		return
	}
	ts, err := core.UnmarshalTrapdoors(req.payload)
	if err != nil {
		fail(err)
		return
	}
	ob.batches.Inc()
	ob.queries.Add(uint64(len(ts)))
	for _, t := range ts {
		ob.tokens.Add(uint64(t.Tokens()))
		ob.tokenBytes.Add(uint64(t.Bytes()))
	}
	bs, batched := idx.(core.BatchSearcher)
	for start := 0; ; start += streamChunkTokens {
		end := min(start+streamChunkTokens, len(ts))
		chunk := ts[start:end]
		var resps []*core.Response
		if batched {
			resps, err = bs.SearchBatch(chunk)
		} else {
			resps = make([]*core.Response, len(chunk))
			for i, t := range chunk {
				if resps[i], err = idx.Search(t); err != nil {
					break
				}
			}
		}
		if err != nil {
			fail(err)
			return
		}
		for _, resp := range resps {
			ob.respItems.Add(uint64(resp.Items()))
		}
		payload, err := core.MarshalResponses(resps)
		if err != nil {
			fail(err)
			return
		}
		if end == len(ts) {
			emit(statusOK, payload)
			return
		}
		emit(statusPartial, payload)
	}
}

// streamTask runs one batch-stream request on a pooled-dispatch worker:
// every chunk goes through the connection's completion channel (and so
// its coalescing writer) as its own response frame. Only the final
// completion recycles the request body and closes the in-flight
// accounting — graceful shutdown therefore waits for whole streams,
// never leaving a peer with a headless partial sequence.
func (d *dispatcher) streamTask(t task) {
	oi := opIndex(t.req.op)
	start := time.Now()
	handleBatchStream(d.reg, t.req, func(status byte, payload []byte) {
		c := completion{id: t.req.id, status: status, payload: payload}
		if status != statusPartial { // terminal frame
			c.bp, c.counted = t.bp, t.counted
		}
		if status == statusErr {
			tm.errors[oi].Inc()
		}
		d.compl <- c
	})
	dur := time.Since(start)
	tm.requests[oi].Inc()
	tm.latency[oi].Record(dur)
	logSlowQuery(d.log, d.slow, t.req, dur, nil)
}

// streamRequestSpawn is streamTask's spawn-dispatch counterpart: chunks
// are written directly under the connection's write lock.
func streamRequestSpawn(reg *Registry, rw io.Writer, wmu *sync.Mutex, req request) {
	oi := opIndex(req.op)
	start := time.Now()
	handleBatchStream(reg, req, func(status byte, payload []byte) {
		if status == statusErr {
			tm.errors[oi].Inc()
		}
		writeStatusResponse(rw, wmu, req.id, status, payload)
	})
	dur := time.Since(start)
	tm.requests[oi].Inc()
	tm.latency[oi].Record(dur)
}

// SearchBatchStream runs the batch through the streamed op regardless
// of its size; see SearchBatchStreamContext.
func (h *IndexHandle) SearchBatchStream(ts []*core.Trapdoor) ([]*core.Response, error) {
	return h.SearchBatchStreamContext(context.Background(), ts)
}

// SearchBatchStreamContext sends the whole trapdoor batch in one
// batch-stream frame and reassembles the chunked response stream. The
// result is exactly SearchBatchContext's — same responses, same order —
// but no response frame ever carries more than a sub-batch, and the
// first chunk arrives while the server is still searching the rest.
func (h *IndexHandle) SearchBatchStreamContext(ctx context.Context, ts []*core.Trapdoor) ([]*core.Response, error) {
	payload, err := core.MarshalTrapdoors(ts)
	if err != nil {
		return nil, err
	}
	// The server emits one frame per chunk; sizing the reply channel for
	// all of them keeps the connection's read loop from ever blocking on
	// this stream, no matter how slowly the caller drains.
	chunks := (len(ts)+streamChunkTokens-1)/streamChunkTokens + 1
	rs := make([]*core.Response, 0, len(ts))
	err = h.conn.streamContext(ctx, opBatchStream, h.name, payload, chunks, func(chunk []byte) error {
		part, err := core.UnmarshalResponses(chunk)
		if err != nil {
			return err
		}
		rs = append(rs, part...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rs) != len(ts) {
		return nil, fmt.Errorf("transport: batch stream carried %d responses for %d trapdoors", len(rs), len(ts))
	}
	return rs, nil
}
