package transport

import (
	"errors"
	"net"
	"testing"
)

// drainServer returns a Server already in the draining state, so every
// admitted request takes the shed path deterministically.
func drainServer(reg *Registry) *Server {
	srv := NewServer(reg)
	srv.reqMu.Lock()
	srv.down = true
	srv.reqMu.Unlock()
	return srv
}

// TestOverloadResponse verifies a draining server answers requests with
// an overload response the client surfaces as ErrOverloaded — the
// connection stays up, distinguishing "server full" from "server gone".
func TestOverloadResponse(t *testing.T) {
	for _, mode := range []DispatchMode{DispatchPooled, DispatchSpawn} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := NewRegistry()
			srv := drainServer(reg)
			cliSide, srvSide := net.Pipe()
			go func() {
				_ = serveLoop(reg, srvSide, srv, mode, nil, 0)
			}()
			conn := NewConn(cliSide)
			defer conn.Close()

			shedBefore := tm.shed.Value()
			overloadBefore := tm.overload.Value()
			if _, err := conn.Names(); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("draining server: err = %v, want ErrOverloaded", err)
			}
			// The connection survives the shed: a second request gets shed
			// again rather than failing on a dead conn.
			if _, err := conn.Names(); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("second request after shed: err = %v, want ErrOverloaded", err)
			}
			if got := tm.shed.Value() - shedBefore; got != 2 {
				t.Errorf("rsse_requests_shed_total delta = %d, want 2", got)
			}
			if got := tm.overload.Value() - overloadBefore; got != 2 {
				t.Errorf("rsse_overload_responses_total delta = %d, want 2", got)
			}
		})
	}
}
