package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rsse/internal/core"
)

// RetryPolicy bounds how a Redialer's handles retry idempotent ops.
// The zero value means "use the defaults"; an explicit MaxAttempts of
// 1 disables retries while keeping the redial-on-dead-conn behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per op, first included.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further
	// retry doubles it (plus up to 50% jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpTimeout, when non-zero, is a per-attempt deadline. It is what
	// turns a black-holed connection — open but silent, so the read
	// loop never fails — into a retryable timeout: the attempt expires,
	// the conn is replaced, and the next attempt dials fresh.
	OpTimeout time.Duration
	// Seed makes the backoff jitter deterministic for tests; 0 draws
	// from the global source.
	Seed int64
}

// DefaultRetryPolicy is what a zero RetryPolicy resolves to.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 10 * time.Millisecond,
	MaxBackoff:  time.Second,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetryPolicy.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	return p
}

// Redialer hands out live connections to one address, replacing
// sticky-dead ones through its Pool. It is the seam between "a Conn
// died" and "the op failed": handles created via Index retry
// idempotent reads across redials, per the policy. Safe for
// concurrent use.
type Redialer struct {
	pool   *Pool
	addr   string
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRedialer wraps one address of a pool with a retry policy.
func NewRedialer(pool *Pool, addr string, policy RetryPolicy) *Redialer {
	policy = policy.withDefaults()
	var rng *rand.Rand
	if policy.Seed != 0 {
		rng = rand.New(rand.NewSource(policy.Seed))
	}
	return &Redialer{pool: pool, addr: addr, policy: policy, rng: rng}
}

// Policy returns the resolved retry policy.
func (r *Redialer) Policy() RetryPolicy { return r.policy }

// Addr returns the address the redialer serves.
func (r *Redialer) Addr() string { return r.addr }

// Get returns a live connection, dialing (or redialing a dead cached
// conn) at most once — the retry loop above it owns the attempt
// budget. Dial failures wrap ErrConnDead so callers can treat "could
// not connect" and "connection died" as one retryable class.
func (r *Redialer) Get() (*Conn, error) {
	c, err := r.pool.Get(r.addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrConnDead, r.addr, err)
	}
	return c, nil
}

// Invalidate evicts c from the pool so the next Get redials. Used
// both for conns whose transport died and for conns that stopped
// answering (per-op deadline expired while the parent context lived).
func (r *Redialer) Invalidate(c *Conn) { r.pool.Evict(r.addr, c) }

// backoff returns the sleep before retry number `retry` (1-based):
// exponential from BaseBackoff, capped at MaxBackoff, with up to 50%
// added jitter so a fleet of retrying clients does not thunder back
// in lockstep.
func (r *Redialer) backoff(retry int) time.Duration {
	d := r.policy.BaseBackoff << (retry - 1)
	if d > r.policy.MaxBackoff || d <= 0 {
		d = r.policy.MaxBackoff
	}
	var f float64
	if r.rng != nil {
		r.mu.Lock()
		f = r.rng.Float64()
		r.mu.Unlock()
	} else {
		f = rand.Float64()
	}
	return d + time.Duration(f*0.5*float64(d))
}

// Index returns a resilient handle on the named index: the same
// surface as Conn.Index, but each idempotent read op survives conn
// death by redialing and retrying under the policy.
func (r *Redialer) Index(name string) *ResilientHandle {
	return &ResilientHandle{rd: r, name: name}
}

// Default returns the resilient handle single-index deployments use.
func (r *Redialer) Default() *ResilientHandle { return r.Index(DefaultIndex) }

// ResilientHandle addresses one named index through a Redialer. It
// implements core.Server (plus the context and batch extensions) like
// IndexHandle, but retries idempotent read ops — meta, search, batch
// search, fetch — across connection deaths with capped, jittered
// backoff. It deliberately has no update surface: updates are
// at-most-once through the WAL ack and must never be auto-retried.
//
// Retry classification per attempt error:
//   - ErrConnDead: the transport died; replace the conn and retry.
//   - ErrOverloaded: the server is alive but shedding; back off and
//     retry on the SAME conn — failing over would stampede a healthy
//     peer while this one drains.
//   - per-attempt deadline (parent context still live): the conn may
//     be black-holed; replace it and retry.
//   - anything else (server errors, parse errors, parent context
//     expiry): not retryable, returned as-is.
type ResilientHandle struct {
	rd   *Redialer
	name string

	metaMu sync.Mutex
	metaOK bool
	meta   core.IndexMeta
}

// Name returns the index name the handle addresses.
func (h *ResilientHandle) Name() string { return h.name }

// do runs op under the retry policy. op receives a per-attempt
// context (carrying OpTimeout if configured) and a live conn.
func (h *ResilientHandle) do(ctx context.Context, op func(ctx context.Context, c *Conn) error) error {
	p := h.rd.policy
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, h.rd.backoff(attempt-1)); err != nil {
				return lastErr
			}
		}
		c, err := h.rd.Get()
		if err != nil {
			lastErr = err
			continue
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.OpTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.OpTimeout)
		}
		err = op(attemptCtx, c)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		switch {
		case errors.Is(err, ErrConnDead):
			h.rd.Invalidate(c)
		case errors.Is(err, ErrOverloaded):
			// Server alive, shedding: keep the conn, just back off.
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// The attempt timed out but the caller's context is fine:
			// treat the conn as unresponsive (black hole) and replace it.
			h.rd.Invalidate(c)
		default:
			return err
		}
	}
	return lastErr
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Meta implements core.Server; a successful result is cached.
func (h *ResilientHandle) Meta() (core.IndexMeta, error) {
	return h.MetaContext(context.Background())
}

// MetaContext is Meta with cancellation.
func (h *ResilientHandle) MetaContext(ctx context.Context) (core.IndexMeta, error) {
	h.metaMu.Lock()
	defer h.metaMu.Unlock()
	if h.metaOK {
		return h.meta, nil
	}
	var m core.IndexMeta
	err := h.do(ctx, func(ctx context.Context, c *Conn) error {
		var err error
		m, err = fetchMeta(ctx, c, h.name)
		return err
	})
	if err != nil {
		return core.IndexMeta{}, err
	}
	h.meta, h.metaOK = m, true
	return m, nil
}

// Search implements core.Server.
func (h *ResilientHandle) Search(t *core.Trapdoor) (*core.Response, error) {
	return h.SearchContext(context.Background(), t)
}

// SearchContext implements core.ContextSearcher with retries.
func (h *ResilientHandle) SearchContext(ctx context.Context, t *core.Trapdoor) (*core.Response, error) {
	var out *core.Response
	err := h.do(ctx, func(ctx context.Context, c *Conn) error {
		var err error
		out, err = c.Index(h.name).SearchContext(ctx, t)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchBatch implements core.BatchSearcher.
func (h *ResilientHandle) SearchBatch(ts []*core.Trapdoor) ([]*core.Response, error) {
	return h.SearchBatchContext(context.Background(), ts)
}

// SearchBatchContext implements core.ContextBatchSearcher with
// retries. The streamed large-batch path is retry-safe because every
// attempt reassembles into a fresh slice — a stream the server died
// halfway through is discarded whole, never spliced.
func (h *ResilientHandle) SearchBatchContext(ctx context.Context, ts []*core.Trapdoor) ([]*core.Response, error) {
	var out []*core.Response
	err := h.do(ctx, func(ctx context.Context, c *Conn) error {
		var err error
		out, err = c.Index(h.name).SearchBatchContext(ctx, ts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fetch implements core.Server.
func (h *ResilientHandle) Fetch(id core.ID) ([]byte, bool, error) {
	return h.FetchContext(context.Background(), id)
}

// FetchContext implements core.ContextFetcher with retries.
func (h *ResilientHandle) FetchContext(ctx context.Context, id core.ID) (val []byte, ok bool, err error) {
	err = h.do(ctx, func(ctx context.Context, c *Conn) error {
		var err error
		val, ok, err = c.Index(h.name).FetchContext(ctx, id)
		return err
	})
	if err != nil {
		return nil, false, err
	}
	return val, ok, nil
}
