package rsse

import "testing"

// TestMergeRanges covers the merge semantics table-wise: overlap,
// adjacency, nesting, duplicates and single points.
func TestMergeRanges(t *testing.T) {
	cases := []struct {
		name string
		in   []Range
		want []Range
	}{
		{"empty", nil, nil},
		{"single", []Range{{Lo: 5, Hi: 10}}, []Range{{Lo: 5, Hi: 10}}},
		{"disjoint", []Range{{Lo: 20, Hi: 30}, {Lo: 0, Hi: 10}}, []Range{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 30}}},
		{"overlapping", []Range{{Lo: 0, Hi: 10}, {Lo: 5, Hi: 20}}, []Range{{Lo: 0, Hi: 20}}},
		{"adjacent", []Range{{Lo: 0, Hi: 10}, {Lo: 11, Hi: 20}}, []Range{{Lo: 0, Hi: 20}}},
		{"gap-of-one", []Range{{Lo: 0, Hi: 10}, {Lo: 12, Hi: 20}}, []Range{{Lo: 0, Hi: 10}, {Lo: 12, Hi: 20}}},
		{"nested", []Range{{Lo: 0, Hi: 100}, {Lo: 10, Hi: 20}, {Lo: 30, Hi: 40}}, []Range{{Lo: 0, Hi: 100}}},
		{"duplicate", []Range{{Lo: 5, Hi: 10}, {Lo: 5, Hi: 10}}, []Range{{Lo: 5, Hi: 10}}},
		{"single-points", []Range{{Lo: 3, Hi: 3}, {Lo: 5, Hi: 5}, {Lo: 4, Hi: 4}}, []Range{{Lo: 3, Hi: 5}}},
		{"point-inside", []Range{{Lo: 0, Hi: 10}, {Lo: 7, Hi: 7}}, []Range{{Lo: 0, Hi: 10}}},
		{"same-lo-different-hi", []Range{{Lo: 5, Hi: 8}, {Lo: 5, Hi: 30}, {Lo: 5, Hi: 10}}, []Range{{Lo: 5, Hi: 30}}},
		{"chain", []Range{{Lo: 40, Hi: 50}, {Lo: 0, Hi: 10}, {Lo: 10, Hi: 25}, {Lo: 26, Hi: 39}}, []Range{{Lo: 0, Hi: 50}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Snapshot the input: mergeRanges must be copy-on-write.
			orig := append([]Range(nil), tc.in...)
			got := mergeRanges(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("mergeRanges(%v) = %v, want %v", orig, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("mergeRanges(%v) = %v, want %v", orig, got, tc.want)
				}
			}
			for i := range tc.in {
				if tc.in[i] != orig[i] {
					t.Fatalf("mergeRanges mutated its input: %v, originally %v", tc.in, orig)
				}
			}
		})
	}
}

// TestMergeRangesDoesNotAliasInput: the returned slice must not share a
// backing array with the input — writes through one must not corrupt the
// other (the regression the copy-on-write rewrite fixes).
func TestMergeRangesDoesNotAliasInput(t *testing.T) {
	in := []Range{{Lo: 20, Hi: 30}, {Lo: 0, Hi: 10}, {Lo: 5, Hi: 15}}
	got := mergeRanges(in)
	want := []Range{{Lo: 0, Hi: 15}, {Lo: 20, Hi: 30}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeRanges = %v, want %v", got, want)
		}
	}
	got[0].Hi = 999
	if in[0] != (Range{Lo: 20, Hi: 30}) || in[1] != (Range{Lo: 0, Hi: 10}) || in[2] != (Range{Lo: 5, Hi: 15}) {
		t.Fatalf("writing to the result mutated the input: %v", in)
	}
}
