package rsse

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"rsse/internal/core"
	"rsse/internal/transport"
)

// ErrOverloaded is returned by a query whose request the server shed
// (it is alive but refusing new work, e.g. during a shutdown drain).
// Distinct from a connection error so clients can back off or fail
// over; detect it with errors.Is.
var ErrOverloaded = transport.ErrOverloaded

// DefaultIndexName is the name single-index deployments serve under.
// Serve and Dial use it implicitly; multi-index servers pick their own
// names per Registry.Register.
const DefaultIndexName = transport.DefaultIndex

// Registry is a collection of named encrypted indexes served together by
// one process: independent tables, LSM epochs, or any mix. It is safe
// for concurrent use and stays live while served — indexes registered or
// deregistered later are picked up per request.
type Registry struct {
	inner *transport.Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{inner: transport.NewRegistry()}
}

// Register serves index under name (1..255 bytes, unique).
func (r *Registry) Register(name string, index *Index) error {
	if index == nil {
		// Checked here while the concrete type is known: a nil *Index
		// boxed into the interface would pass the transport layer's nil
		// check and panic on first request.
		return errors.New("rsse: cannot register a nil index")
	}
	return r.inner.Register(name, index)
}

// RegisterLazy serves name without loading anything yet: the first
// request addressing the name invokes open — typically an OpenIndexFile
// call — and the result (index or error) is cached for all later
// requests. This is how one process fronts a directory holding more
// index bytes than RAM: every name is routable immediately, files open
// on demand.
func (r *Registry) RegisterLazy(name string, open func() (*Index, error)) error {
	if open == nil {
		return errors.New("rsse: cannot register a nil opener")
	}
	return r.inner.RegisterLazy(name, func() (core.Server, error) {
		idx, err := open()
		if err != nil {
			return nil, err
		}
		if idx == nil {
			return nil, errors.New("rsse: opener returned a nil index")
		}
		return idx, nil
	})
}

// Deregister stops serving name, reporting whether it was present.
func (r *Registry) Deregister(name string) bool {
	return r.inner.Deregister(name)
}

// Names lists the registered index names in sorted order.
func (r *Registry) Names() []string { return r.inner.Names() }

// ServedIndexStat is one registry entry's serving state: whether a
// lazily registered index has been opened yet, its cached open error if
// opening failed, and its operational stats once loaded.
type ServedIndexStat = transport.IndexStat

// Stats reports every registered index's serving state, sorted by name.
// It never triggers a lazy open.
func (r *Registry) Stats() []ServedIndexStat { return r.inner.Stats() }

// Server serves a Registry to remote owners over any number of
// listeners. The server side holds no keys: everything it can learn is
// the schemes' formal leakage plus which named index each request
// addresses. Requests on every connection are dispatched concurrently —
// one slow search does not block a connection's other requests.
type Server struct {
	inner *transport.Server
}

// NewServer creates a server over reg.
func NewServer(reg *Registry) *Server {
	return &Server{inner: transport.NewServer(reg.inner)}
}

// Serve accepts and serves connections on l until the listener closes or
// Shutdown is called (returning nil in both cases).
func (s *Server) Serve(l net.Listener) error { return s.inner.Serve(l) }

// SetDispatch selects the connection dispatch mode: "pooled" (the
// default — bounded per-connection worker pool with coalesced response
// writes, so high fan-in degrades into backpressure) or "spawn" (the
// legacy goroutine-per-request path, kept so rsse-load can measure the
// two against each other). Call before Serve.
func (s *Server) SetDispatch(mode string) error {
	m, err := transport.DispatchModeByName(mode)
	if err != nil {
		return err
	}
	s.inner.SetDispatch(m)
	return nil
}

// SetLogger installs a structured logger for serving events: connection
// lifecycle at Debug, protocol errors and slow queries at Warn. Call
// before Serve; nil (the default) disables serving logs.
func (s *Server) SetLogger(l *slog.Logger) { s.inner.SetLogger(l) }

// SetSlowQuery sets the slow-query threshold: requests whose execution
// takes at least d are logged at Warn with op, index and duration. Zero
// disables the slow-query log. Call before Serve; requires SetLogger.
func (s *Server) SetSlowQuery(d time.Duration) { s.inner.SetSlowQuery(d) }

// Shutdown gracefully stops the server: listeners close immediately,
// in-flight requests finish and their responses are flushed before the
// connections are closed. If ctx expires first, remaining connections
// are closed anyway and ctx's error returned.
func (s *Server) Shutdown(ctx context.Context) error { return s.inner.Shutdown(ctx) }

// Serve serves one encrypted index under the default name until the
// listener is closed — the single-table deployment. Use NewServer with a
// Registry for multiple named indexes and graceful shutdown.
func Serve(l net.Listener, index *Index) error {
	return transport.Serve(l, index)
}

// ServeConn serves an index over a single established connection
// (useful for custom listeners or in-process pipes).
func ServeConn(conn io.ReadWriter, index *Index) error {
	return transport.ServeConn(conn, index)
}

// RemoteIndex is the owner-side handle to an index served elsewhere. It
// satisfies the same role as a local *Index in Client.QueryRemote and
// Client.FetchTupleRemote, and it is safe for concurrent use: requests
// are multiplexed by id over the connection, so parallel queries from
// many goroutines interleave without corrupting the stream (and without
// waiting on each other's responses).
type RemoteIndex struct {
	handle remoteHandle
	names  func() ([]string, error)
	close  func() error
}

// remoteHandle is the wire surface a RemoteIndex speaks through:
// either a plain per-conn handle (transport.IndexHandle) or a
// retrying one over a redialing pool (transport.ResilientHandle, via
// DialIndexWith + WithRetry). Both implement core.Server plus the
// context and batch extensions the query paths use.
type remoteHandle interface {
	core.Server
	core.ContextSearcher
	core.BatchSearcher
	core.ContextBatchSearcher
	core.ContextFetcher
	Name() string
}

// Dial connects to a remote index server and addresses its default
// index, e.g. Dial("tcp", "search.internal:7070").
func Dial(network, addr string) (*RemoteIndex, error) {
	return DialIndex(network, addr, DefaultIndexName)
}

// DialIndex connects to a remote multi-index server and addresses the
// index served under name.
func DialIndex(network, addr, name string) (*RemoteIndex, error) {
	return DialIndexWith(network, addr, name)
}

// NewRemoteIndex wraps an established stream connection (TCP, unix
// socket, net.Pipe, TLS — anything io.ReadWriteCloser), addressing the
// default index.
func NewRemoteIndex(conn io.ReadWriteCloser) *RemoteIndex {
	c := transport.NewConn(conn)
	return &RemoteIndex{handle: c.Default(), names: c.Names, close: c.Close}
}

// Close closes the connection (for a resilient handle, its pool).
func (r *RemoteIndex) Close() error { return r.close() }

// Name returns the served-index name this handle addresses.
func (r *RemoteIndex) Name() string { return r.handle.Name() }

// ServedIndexes asks the server which index names it serves.
func (r *RemoteIndex) ServedIndexes() ([]string, error) { return r.names() }

// N returns the number of tuples in the remote index (its L1 leakage).
func (r *RemoteIndex) N() (int, error) {
	meta, err := r.handle.Meta()
	if err != nil {
		return 0, err
	}
	return meta.N, nil
}

// Kind returns the scheme of the remote index.
func (r *RemoteIndex) Kind() (Kind, error) {
	meta, err := r.handle.Meta()
	if err != nil {
		return 0, err
	}
	return meta.Kind, nil
}

// DomainBits returns the width in bits of the remote index's value
// domain. Together with Kind it lets a client (rsse-load, rsse-owner)
// configure itself entirely from the server's metadata.
func (r *RemoteIndex) DomainBits() (uint8, error) {
	meta, err := r.handle.Meta()
	if err != nil {
		return 0, err
	}
	return meta.DomainBits, nil
}

// DialCluster connects a cluster built earlier (BuildCluster) to its
// remotely served shards. Every shard resolves to a served-index name on
// some server: the shard's Addr in the manifest when set, defaultAddr
// otherwise — so one address serves a co-located cluster, and a static
// shard→addr table spreads shards across machines. Shards sharing an
// address multiplex over one connection. The master key must be the one
// the cluster was built with (Cluster.MasterKey); the manifest itself
// carries no secrets.
//
// Close the returned cluster to drop the connections.
func DialCluster(network, defaultAddr string, man ClusterManifest, masterKey []byte, opts ...ClusterOption) (*Cluster, error) {
	return dialClusterNet(network, defaultAddr, man, masterKey, opts)
}

// dialClusterNet builds the network pool after the options resolve,
// so WithShardConnWrapper can interpose on every shard connection.
func dialClusterNet(network, defaultAddr string, man ClusterManifest, masterKey []byte, opts []ClusterOption) (*Cluster, error) {
	c, cfg, err := clusterFromManifest(man, masterKey, opts)
	if err != nil {
		return nil, err
	}
	dial := transport.Dial
	if cfg.connWrap != nil {
		wrap := cfg.connWrap
		dial = func(network, addr string) (*transport.Conn, error) {
			nc, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			return transport.NewConn(wrap(nc)), nil
		}
	}
	return finishDialCluster(c, cfg, man, transport.NewPoolFunc(network, dial), defaultAddr)
}

// dialCluster resolves every shard through the pool — shared with tests,
// which dial in-process pipes instead of TCP.
func dialCluster(man ClusterManifest, masterKey []byte, opts []ClusterOption, pool *transport.Pool, defaultAddr string) (*Cluster, error) {
	c, cfg, err := clusterFromManifest(man, masterKey, opts)
	if err != nil {
		return nil, err
	}
	return finishDialCluster(c, cfg, man, pool, defaultAddr)
}

// finishDialCluster attaches every shard's wire target. Without a
// retry policy each shard dials eagerly (an unreachable address fails
// here, fast); with WithShardRetry targets are lazy retrying handles
// and a dead shard surfaces per query — as a typed partial result
// under WithPartialResults.
func finishDialCluster(c *Cluster, cfg clusterConfig, man ClusterManifest, pool *transport.Pool, defaultAddr string) (*Cluster, error) {
	c.closers = append(c.closers, pool)
	for i, info := range man.Shards {
		addr := info.Addr
		if addr == "" {
			addr = defaultAddr
		}
		if addr == "" {
			c.Close()
			return nil, fmt.Errorf("rsse: shard %d (%s) has no address and no default was given", i, info.Name)
		}
		if cfg.retry != nil {
			c.targets[i] = transport.NewRedialer(pool, addr, *cfg.retry).Index(info.Name)
			continue
		}
		conn, err := pool.Get(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("rsse: dialing shard %d (%s) at %s: %w", i, info.Name, addr, err)
		}
		c.targets[i] = conn.Index(info.Name)
	}
	return c, nil
}

// QueryRemote runs the full query protocol against a remote index — the
// same rounds as Query, with each round crossing the connection.
func (c *Client) QueryRemote(r *RemoteIndex, q Range) (*Result, error) {
	return c.QueryRemoteContext(context.Background(), r, q)
}

// QueryRemoteContext is QueryRemote with cancellation: an expired ctx
// aborts the in-flight round trip immediately (the server's late
// response is discarded).
func (c *Client) QueryRemoteContext(ctx context.Context, r *RemoteIndex, q Range) (*Result, error) {
	return c.inner.QueryServerContext(ctx, r.handle, q)
}

// QueryBatchRemote answers several ranges against a remote index in one
// batched protocol run: the deduplicated multi-trapdoor crosses the
// connection as a single batch frame per round (instead of one frame per
// range), the server searches the batch's tokens concurrently, and
// false-positive filtering fetches each distinct id once, in parallel.
func (c *Client) QueryBatchRemote(r *RemoteIndex, ranges []Range) (*BatchResult, error) {
	return c.QueryBatchRemoteContext(context.Background(), r, ranges)
}

// QueryBatchRemoteContext is QueryBatchRemote with cancellation.
func (c *Client) QueryBatchRemoteContext(ctx context.Context, r *RemoteIndex, ranges []Range) (*BatchResult, error) {
	return c.inner.QueryBatchContext(ctx, r.handle, ranges)
}

// FetchTupleRemote retrieves and decrypts one tuple from a remote index.
func (c *Client) FetchTupleRemote(r *RemoteIndex, id ID) (Tuple, error) {
	return c.inner.FetchTuple(r.handle, id)
}

// DefaultDynamicName is the update-namespace name writable deployments
// serve under when none is chosen (rsse-server -writable uses it).
const DefaultDynamicName = "dynamic"

// WritableStore is what RegisterWritable serves: the mutation-and-query
// surface Dynamic and ShardedDynamic share. Implementations need not be
// concurrent-safe — the registry wraps them in a serializing adapter.
type WritableStore interface {
	Insert(id ID, value Value, payload []byte) error
	Delete(id ID, value Value) error
	Modify(id ID, oldValue, newValue Value, payload []byte) error
	Flush() error
	Query(q Range) ([]Tuple, UpdateStats, error)
}

// writableTarget adapts a WritableStore to the transport's update ops,
// serializing access: Dynamic is single-writer by contract, but the
// server dispatches requests from every connection concurrently.
type writableTarget struct {
	mu sync.Mutex
	s  WritableStore
}

func (w *writableTarget) ApplyUpdate(u transport.Update) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch u.Kind {
	case transport.UpdateInsert:
		return w.s.Insert(u.ID, u.Value, u.Payload)
	case transport.UpdateDelete:
		return w.s.Delete(u.ID, u.Value)
	case transport.UpdateModify:
		return w.s.Modify(u.ID, u.Value, u.NewValue, u.Payload)
	default:
		return fmt.Errorf("rsse: unknown update kind %d", u.Kind)
	}
}

func (w *writableTarget) FlushUpdates() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.s.Flush()
}

func (w *writableTarget) QueryTuples(q core.Range) ([]core.Tuple, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	tuples, _, err := w.s.Query(q)
	return tuples, err
}

// RegisterWritable serves a writable store — typically a durable
// Dynamic or ShardedDynamic — under name in the update namespace, so
// remote owners mutate it through RemoteDynamic. The namespace is
// independent of read indexes: the same name may serve both.
//
// Trust model: the serving process holds the store's keys (updates
// arrive and query results leave in plaintext on the wire), so a
// writable server is an owner-side durable write gateway, NOT the
// paper's untrusted query server. Put it with the owner's
// infrastructure and front it with transport security; see
// ARCHITECTURE.md.
func (r *Registry) RegisterWritable(name string, store WritableStore) error {
	if store == nil {
		return errors.New("rsse: cannot register a nil writable store")
	}
	return r.inner.RegisterUpdatable(name, &writableTarget{s: store})
}

// DeregisterWritable stops serving the writable store called name,
// reporting whether it was present.
func (r *Registry) DeregisterWritable(name string) bool {
	return r.inner.DeregisterUpdatable(name)
}

// WritableNames lists the writable store names served, sorted.
func (r *Registry) WritableNames() []string { return r.inner.UpdatableNames() }

// RemoteDynamic is the owner-side handle to a writable store served by
// an rsse-server -writable process: inserts, deletes and modifications
// cross the wire and are acknowledged once the server has them per its
// durability policy (with the server's WithSyncEvery(1) default, once
// they are fsynced into its write-ahead log). It is safe for concurrent
// use; the server serializes updates per store.
type RemoteDynamic struct {
	conn   *transport.Conn
	handle *transport.UpdateHandle
}

// DialDynamic connects to a writable server and addresses the writable
// store served under name (DefaultDynamicName for rsse-server
// -writable's default).
func DialDynamic(network, addr, name string) (*RemoteDynamic, error) {
	c, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteDynamic{conn: c, handle: c.Updatable(name)}, nil
}

// NewRemoteDynamic wraps an established stream connection (TCP, unix
// socket, net.Pipe — anything io.ReadWriteCloser), addressing the
// writable store called name.
func NewRemoteDynamic(conn io.ReadWriteCloser, name string) *RemoteDynamic {
	c := transport.NewConn(conn)
	return &RemoteDynamic{conn: c, handle: c.Updatable(name)}
}

// Close closes the connection.
func (r *RemoteDynamic) Close() error { return r.conn.Close() }

// Name returns the writable-store name this handle addresses.
func (r *RemoteDynamic) Name() string { return r.handle.Name() }

// Insert ships a tuple insertion; nil means the server accepted and
// (per its fsync policy) persisted it.
func (r *RemoteDynamic) Insert(id ID, value Value, payload []byte) error {
	return r.handle.Apply(transport.Update{Kind: transport.UpdateInsert, ID: id, Value: value, Payload: payload})
}

// Delete ships a deletion; value must be the victim's current value.
func (r *RemoteDynamic) Delete(id ID, value Value) error {
	return r.handle.Apply(transport.Update{Kind: transport.UpdateDelete, ID: id, Value: value})
}

// Modify ships an atomic value/payload change.
func (r *RemoteDynamic) Modify(id ID, oldValue, newValue Value, payload []byte) error {
	return r.handle.Apply(transport.Update{Kind: transport.UpdateModify, ID: id, Value: oldValue, NewValue: newValue, Payload: payload})
}

// Flush seals the server-side pending batch into a fresh epoch and
// commits it durably.
func (r *RemoteDynamic) Flush() error { return r.handle.Flush() }

// Query runs a range query on the writable store, returning decrypted
// live tuples (flushed epochs only, like Dynamic.Query).
func (r *RemoteDynamic) Query(q Range) ([]Tuple, error) {
	return r.handle.QueryRange(q)
}

// QueryContext is Query with cancellation.
func (r *RemoteDynamic) QueryContext(ctx context.Context, q Range) ([]Tuple, error) {
	return r.handle.QueryRangeContext(ctx, q)
}
