package rsse

import (
	"io"
	"net"

	"rsse/internal/transport"
)

// Serve serves an encrypted index to remote owners until the listener is
// closed. The server side holds no keys: everything it can learn is the
// scheme's formal leakage. Each connection is handled concurrently.
func Serve(l net.Listener, index *Index) error {
	return transport.Serve(l, index)
}

// ServeConn serves an index over a single established connection
// (useful for custom listeners or in-process pipes).
func ServeConn(conn io.ReadWriter, index *Index) error {
	return transport.ServeConn(conn, index)
}

// RemoteIndex is the owner-side handle to an index served elsewhere. It
// satisfies the same role as a local *Index in Client.QueryRemote and
// Client.FetchTupleRemote. Requests on one RemoteIndex are serialized;
// open one per goroutine for parallel querying.
type RemoteIndex struct {
	conn *transport.Conn
}

// Dial connects to a remote index server, e.g.
// Dial("tcp", "search.internal:7070").
func Dial(network, addr string) (*RemoteIndex, error) {
	c, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteIndex{conn: c}, nil
}

// NewRemoteIndex wraps an established stream connection (TCP, unix
// socket, net.Pipe, TLS — anything io.ReadWriteCloser).
func NewRemoteIndex(conn io.ReadWriteCloser) *RemoteIndex {
	return &RemoteIndex{conn: transport.NewConn(conn)}
}

// Close closes the connection.
func (r *RemoteIndex) Close() error { return r.conn.Close() }

// N returns the number of tuples in the remote index (its L1 leakage).
func (r *RemoteIndex) N() (int, error) {
	meta, err := r.conn.Meta()
	if err != nil {
		return 0, err
	}
	return meta.N, nil
}

// Kind returns the scheme of the remote index.
func (r *RemoteIndex) Kind() (Kind, error) {
	meta, err := r.conn.Meta()
	if err != nil {
		return 0, err
	}
	return meta.Kind, nil
}

// QueryRemote runs the full query protocol against a remote index — the
// same rounds as Query, with each round crossing the connection.
func (c *Client) QueryRemote(r *RemoteIndex, q Range) (*Result, error) {
	return c.inner.QueryServer(r.conn, q)
}

// FetchTupleRemote retrieves and decrypts one tuple from a remote index.
func (c *Client) FetchTupleRemote(r *RemoteIndex, id ID) (Tuple, error) {
	return c.inner.FetchTuple(r.conn, id)
}
