package rsse

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"

	"rsse/internal/core"
	"rsse/internal/transport"
)

// DefaultIndexName is the name single-index deployments serve under.
// Serve and Dial use it implicitly; multi-index servers pick their own
// names per Registry.Register.
const DefaultIndexName = transport.DefaultIndex

// Registry is a collection of named encrypted indexes served together by
// one process: independent tables, LSM epochs, or any mix. It is safe
// for concurrent use and stays live while served — indexes registered or
// deregistered later are picked up per request.
type Registry struct {
	inner *transport.Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{inner: transport.NewRegistry()}
}

// Register serves index under name (1..255 bytes, unique).
func (r *Registry) Register(name string, index *Index) error {
	if index == nil {
		// Checked here while the concrete type is known: a nil *Index
		// boxed into the interface would pass the transport layer's nil
		// check and panic on first request.
		return errors.New("rsse: cannot register a nil index")
	}
	return r.inner.Register(name, index)
}

// RegisterLazy serves name without loading anything yet: the first
// request addressing the name invokes open — typically an OpenIndexFile
// call — and the result (index or error) is cached for all later
// requests. This is how one process fronts a directory holding more
// index bytes than RAM: every name is routable immediately, files open
// on demand.
func (r *Registry) RegisterLazy(name string, open func() (*Index, error)) error {
	if open == nil {
		return errors.New("rsse: cannot register a nil opener")
	}
	return r.inner.RegisterLazy(name, func() (core.Server, error) {
		idx, err := open()
		if err != nil {
			return nil, err
		}
		if idx == nil {
			return nil, errors.New("rsse: opener returned a nil index")
		}
		return idx, nil
	})
}

// Deregister stops serving name, reporting whether it was present.
func (r *Registry) Deregister(name string) bool {
	return r.inner.Deregister(name)
}

// Names lists the registered index names in sorted order.
func (r *Registry) Names() []string { return r.inner.Names() }

// ServedIndexStat is one registry entry's serving state: whether a
// lazily registered index has been opened yet, its cached open error if
// opening failed, and its operational stats once loaded.
type ServedIndexStat = transport.IndexStat

// Stats reports every registered index's serving state, sorted by name.
// It never triggers a lazy open.
func (r *Registry) Stats() []ServedIndexStat { return r.inner.Stats() }

// Server serves a Registry to remote owners over any number of
// listeners. The server side holds no keys: everything it can learn is
// the schemes' formal leakage plus which named index each request
// addresses. Requests on every connection are dispatched concurrently —
// one slow search does not block a connection's other requests.
type Server struct {
	inner *transport.Server
}

// NewServer creates a server over reg.
func NewServer(reg *Registry) *Server {
	return &Server{inner: transport.NewServer(reg.inner)}
}

// Serve accepts and serves connections on l until the listener closes or
// Shutdown is called (returning nil in both cases).
func (s *Server) Serve(l net.Listener) error { return s.inner.Serve(l) }

// Shutdown gracefully stops the server: listeners close immediately,
// in-flight requests finish and their responses are flushed before the
// connections are closed. If ctx expires first, remaining connections
// are closed anyway and ctx's error returned.
func (s *Server) Shutdown(ctx context.Context) error { return s.inner.Shutdown(ctx) }

// Serve serves one encrypted index under the default name until the
// listener is closed — the single-table deployment. Use NewServer with a
// Registry for multiple named indexes and graceful shutdown.
func Serve(l net.Listener, index *Index) error {
	return transport.Serve(l, index)
}

// ServeConn serves an index over a single established connection
// (useful for custom listeners or in-process pipes).
func ServeConn(conn io.ReadWriter, index *Index) error {
	return transport.ServeConn(conn, index)
}

// RemoteIndex is the owner-side handle to an index served elsewhere. It
// satisfies the same role as a local *Index in Client.QueryRemote and
// Client.FetchTupleRemote, and it is safe for concurrent use: requests
// are multiplexed by id over the connection, so parallel queries from
// many goroutines interleave without corrupting the stream (and without
// waiting on each other's responses).
type RemoteIndex struct {
	conn   *transport.Conn
	handle *transport.IndexHandle
}

// Dial connects to a remote index server and addresses its default
// index, e.g. Dial("tcp", "search.internal:7070").
func Dial(network, addr string) (*RemoteIndex, error) {
	return DialIndex(network, addr, DefaultIndexName)
}

// DialIndex connects to a remote multi-index server and addresses the
// index served under name.
func DialIndex(network, addr, name string) (*RemoteIndex, error) {
	c, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteIndex{conn: c, handle: c.Index(name)}, nil
}

// NewRemoteIndex wraps an established stream connection (TCP, unix
// socket, net.Pipe, TLS — anything io.ReadWriteCloser), addressing the
// default index.
func NewRemoteIndex(conn io.ReadWriteCloser) *RemoteIndex {
	c := transport.NewConn(conn)
	return &RemoteIndex{conn: c, handle: c.Default()}
}

// Close closes the connection.
func (r *RemoteIndex) Close() error { return r.conn.Close() }

// Name returns the served-index name this handle addresses.
func (r *RemoteIndex) Name() string { return r.handle.Name() }

// ServedIndexes asks the server which index names it serves.
func (r *RemoteIndex) ServedIndexes() ([]string, error) { return r.conn.Names() }

// N returns the number of tuples in the remote index (its L1 leakage).
func (r *RemoteIndex) N() (int, error) {
	meta, err := r.handle.Meta()
	if err != nil {
		return 0, err
	}
	return meta.N, nil
}

// Kind returns the scheme of the remote index.
func (r *RemoteIndex) Kind() (Kind, error) {
	meta, err := r.handle.Meta()
	if err != nil {
		return 0, err
	}
	return meta.Kind, nil
}

// DialCluster connects a cluster built earlier (BuildCluster) to its
// remotely served shards. Every shard resolves to a served-index name on
// some server: the shard's Addr in the manifest when set, defaultAddr
// otherwise — so one address serves a co-located cluster, and a static
// shard→addr table spreads shards across machines. Shards sharing an
// address multiplex over one connection. The master key must be the one
// the cluster was built with (Cluster.MasterKey); the manifest itself
// carries no secrets.
//
// Close the returned cluster to drop the connections.
func DialCluster(network, defaultAddr string, man ClusterManifest, masterKey []byte, opts ...ClusterOption) (*Cluster, error) {
	return dialCluster(man, masterKey, opts, transport.NewPool(network), defaultAddr)
}

// dialCluster resolves every shard through the pool — shared with tests,
// which dial in-process pipes instead of TCP.
func dialCluster(man ClusterManifest, masterKey []byte, opts []ClusterOption, pool *transport.Pool, defaultAddr string) (*Cluster, error) {
	c, err := clusterFromManifest(man, masterKey, opts)
	if err != nil {
		return nil, err
	}
	c.closers = append(c.closers, pool)
	for i, info := range man.Shards {
		addr := info.Addr
		if addr == "" {
			addr = defaultAddr
		}
		if addr == "" {
			c.Close()
			return nil, fmt.Errorf("rsse: shard %d (%s) has no address and no default was given", i, info.Name)
		}
		conn, err := pool.Get(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("rsse: dialing shard %d (%s) at %s: %w", i, info.Name, addr, err)
		}
		c.targets[i] = conn.Index(info.Name)
	}
	return c, nil
}

// QueryRemote runs the full query protocol against a remote index — the
// same rounds as Query, with each round crossing the connection.
func (c *Client) QueryRemote(r *RemoteIndex, q Range) (*Result, error) {
	return c.QueryRemoteContext(context.Background(), r, q)
}

// QueryRemoteContext is QueryRemote with cancellation: an expired ctx
// aborts the in-flight round trip immediately (the server's late
// response is discarded).
func (c *Client) QueryRemoteContext(ctx context.Context, r *RemoteIndex, q Range) (*Result, error) {
	return c.inner.QueryServerContext(ctx, r.handle, q)
}

// QueryBatchRemote answers several ranges against a remote index in one
// batched protocol run: the deduplicated multi-trapdoor crosses the
// connection as a single batch frame per round (instead of one frame per
// range), the server searches the batch's tokens concurrently, and
// false-positive filtering fetches each distinct id once, in parallel.
func (c *Client) QueryBatchRemote(r *RemoteIndex, ranges []Range) (*BatchResult, error) {
	return c.QueryBatchRemoteContext(context.Background(), r, ranges)
}

// QueryBatchRemoteContext is QueryBatchRemote with cancellation.
func (c *Client) QueryBatchRemoteContext(ctx context.Context, r *RemoteIndex, ranges []Range) (*BatchResult, error) {
	return c.inner.QueryBatchContext(ctx, r.handle, ranges)
}

// FetchTupleRemote retrieves and decrypts one tuple from a remote index.
func (c *Client) FetchTupleRemote(r *RemoteIndex, id ID) (Tuple, error) {
	return c.inner.FetchTuple(r.handle, id)
}
