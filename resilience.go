package rsse

import (
	"errors"
	"net"

	"rsse/internal/transport"
)

// ErrConnDead marks failures caused by the transport itself dying — a
// lost connection, a failed write, an unreachable server — as opposed
// to errors the server reported over a healthy connection. Detect it
// with errors.Is; it is the retryable class for idempotent reads.
var ErrConnDead = transport.ErrConnDead

// RetryPolicy bounds automatic retries of idempotent read operations
// (query, batch query, fetch, meta) on a resilient handle: total
// attempts, exponential backoff base and cap (with jitter), and an
// optional per-attempt deadline that turns a silently unresponsive
// connection into a detectable, retryable fault. The zero value
// selects the defaults. Updates are never retried — they stay
// at-most-once through the server's WAL acknowledgement.
type RetryPolicy = transport.RetryPolicy

// dialConfig collects the DialOptions.
type dialConfig struct {
	retry    *RetryPolicy
	connWrap func(net.Conn) net.Conn
}

// DialOption customizes how Dial/DialIndexWith connect.
type DialOption func(*dialConfig) error

// WithRetry makes the dialed handle resilient: sticky-dead
// connections are evicted and redialed, idempotent read ops retry
// under p with capped jittered backoff, ErrOverloaded responses back
// off on the same connection instead of failing over, and (when
// p.OpTimeout is set) each attempt carries its own deadline. The zero
// policy selects the defaults (4 attempts, 10ms base backoff, 1s cap).
func WithRetry(p RetryPolicy) DialOption {
	return func(c *dialConfig) error {
		pc := p
		c.retry = &pc
		return nil
	}
}

// WithConnWrapper passes every connection this handle opens through
// wrap before the transport takes over — the seam chaos tests and the
// load harness use to inject deterministic faults (see internal/fault
// and rsse-load's -fault flag).
func WithConnWrapper(wrap func(net.Conn) net.Conn) DialOption {
	return func(c *dialConfig) error {
		if wrap == nil {
			return errors.New("rsse: nil conn wrapper")
		}
		c.connWrap = wrap
		return nil
	}
}

// DialIndexWith is DialIndex with connection-level options. Without
// options it behaves exactly like DialIndex: one connection, no
// retries, transport failures surface to the caller as ErrConnDead.
func DialIndexWith(network, addr, name string, opts ...DialOption) (*RemoteIndex, error) {
	var cfg dialConfig
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	dial := transport.Dial
	if cfg.connWrap != nil {
		wrap := cfg.connWrap
		dial = func(network, addr string) (*transport.Conn, error) {
			nc, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			return transport.NewConn(wrap(nc)), nil
		}
	}
	if cfg.retry == nil {
		c, err := dial(network, addr)
		if err != nil {
			return nil, err
		}
		return &RemoteIndex{handle: c.Index(name), names: c.Names, close: c.Close}, nil
	}
	// Resilient path: connections live in a single-address pool the
	// redialer replaces dead entries of; dialing is lazy, so a server
	// that is down right now only costs the first op its retries.
	pool := transport.NewPoolFunc(network, dial)
	rd := transport.NewRedialer(pool, addr, *cfg.retry)
	return &RemoteIndex{
		handle: rd.Index(name),
		names: func() ([]string, error) {
			c, err := rd.Get()
			if err != nil {
				return nil, err
			}
			return c.Names()
		},
		close: pool.Close,
	}, nil
}
