package rsse

import (
	"fmt"

	"rsse/internal/sse"
)

// SetSearchKernel selects the server-side token search path for the
// whole process: "batched" (the default — lane-batched label PRF with
// the derived-state stag cache) or "legacy" (scalar per-token key
// schedule, kept so load tests can measure the two in one binary).
// Meant to be set at process start (rsse-server -prf-kernel); flipping
// it under live traffic is safe but mixes the paths' timings. Results
// are byte-identical either way.
func SetSearchKernel(mode string) error {
	switch mode {
	case "batched":
		sse.SetKernel(true)
	case "legacy":
		sse.SetKernel(false)
	default:
		return fmt.Errorf("rsse: unknown search kernel %q (want batched or legacy)", mode)
	}
	return nil
}

// SearchKernelName names the active search-path configuration, for
// logs and bench reports.
func SearchKernelName() string { return sse.KernelName() }

// SearchKernelCacheStats returns the cumulative derived-state cache
// hits and misses of the batched kernel. The counters are
// process-wide; a hit means a repeated stag skipped its key schedule
// (and usually its label PRFs) entirely.
func SearchKernelCacheStats() (hits, misses uint64) { return sse.KernelCacheStats() }

// ResetSearchKernelCache drops the batched kernel's derived-state
// cache and zeroes its counters — for interleaved A/B measurements
// that must not inherit a warm cache.
func ResetSearchKernelCache() { sse.ResetKernelCache() }
