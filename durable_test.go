package rsse_test

import (
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rsse"
	"rsse/internal/wal"
)

// durableDomainBits mirrors batchDomainBits for the dynamic stores.
func durableDomainBits(kind rsse.Kind) uint8 {
	if kind == rsse.Quadratic {
		return 6
	}
	return 10
}

// dynOptions are the construction options every durable-test store and
// its oracle share (intersecting queries allowed so randomized ranges
// apply to the Constant schemes too).
func dynOptions(extra ...rsse.Option) []rsse.Option {
	return append([]rsse.Option{rsse.AllowIntersectingQueries()}, extra...)
}

// driveUpdates streams a deterministic mixed workload — inserts,
// deletes, modifies, periodic flushes — into every given store (the
// durable one and its never-crashed oracle get identical histories).
// It leaves a tail of pending (unflushed) operations.
func driveUpdates(t *testing.T, bits uint8, stores ...rsse.WritableStore) {
	t.Helper()
	m := uint64(1) << bits
	val := func(id uint64) uint64 { return (id * 37) % m }
	apply := func(f func(s rsse.WritableStore) error) {
		t.Helper()
		for _, s := range stores {
			if err := f(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	id := uint64(1)
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 9; i++ {
			cur := id
			apply(func(s rsse.WritableStore) error {
				return s.Insert(cur, val(cur), []byte{byte(cur), byte(cur >> 8)})
			})
			if cur%4 == 0 {
				apply(func(s rsse.WritableStore) error {
					return s.Modify(cur, val(cur), (val(cur)+m/2)%m, []byte("moved"))
				})
			}
			if cur%5 == 0 && cur > 3 {
				victim := cur - 3
				v := val(victim)
				if victim%4 == 0 {
					v = (v + m/2) % m
				}
				apply(func(s rsse.WritableStore) error { return s.Delete(victim, v) })
			}
			id++
		}
		apply(func(s rsse.WritableStore) error { return s.Flush() })
	}
	// Pending tail: acknowledged, WAL-only, never flushed before the
	// simulated crash.
	tail := id
	apply(func(s rsse.WritableStore) error {
		if err := s.Insert(tail, val(tail), []byte("tail")); err != nil {
			return err
		}
		return s.Delete(1, val(1))
	})
}

func sortedTuples(ts []rsse.Tuple) []rsse.Tuple {
	out := append([]rsse.Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func assertTuplesEqual(t *testing.T, label string, got, want []rsse.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d\n got: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Value != w.Value || string(g.Payload) != string(w.Payload) {
			t.Fatalf("%s: tuple %d: got %+v, want %+v", label, i, g, w)
		}
	}
}

// randomRanges draws n randomized query ranges including degenerate
// points and the full domain.
func randomRanges(bits uint8, n int) []rsse.Range {
	m := uint64(1) << bits
	out := make([]rsse.Range, 0, n+2)
	out = append(out, rsse.Range{Lo: 0, Hi: m - 1}, rsse.Range{Lo: m / 2, Hi: m / 2})
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		a, b := next()%m, next()%m
		if a > b {
			a, b = b, a
		}
		out = append(out, rsse.Range{Lo: a, Hi: b})
	}
	return out
}

// TestDurableRecoveryDifferential is the acceptance proof: for all 7
// schemes, a durable Dynamic that crashes (abandoned without Close)
// with sealed epochs AND a pending WAL tail must, after reopening,
// answer 100 randomized ranges byte-identically to a never-crashed
// store fed the identical update stream — before and after the
// recovered tail is flushed.
func TestDurableRecoveryDifferential(t *testing.T) {
	for _, kind := range rsse.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			bits := durableDomainBits(kind)
			dir := t.TempDir()
			d, err := rsse.OpenDynamic(dir, kind, bits, 2, dynOptions()...)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := rsse.NewDynamic(kind, bits, 2, dynOptions()...)
			if err != nil {
				t.Fatal(err)
			}
			driveUpdates(t, bits, d, oracle)
			// Crash: d is dropped without Close or final Flush (the hook
			// releases the WAL's advisory lock without syncing, leaving
			// on-disk state exactly as SIGKILL would).
			rsse.Crash(d)

			d2, err := rsse.OpenDynamic(dir, kind, bits, 2, dynOptions()...)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer d2.Close()
			if d2.Pending() != oracle.Pending() {
				t.Fatalf("recovered %d pending ops, oracle has %d", d2.Pending(), oracle.Pending())
			}
			ranges := randomRanges(bits, 100)
			compare := func(phase string) {
				t.Helper()
				for _, q := range ranges {
					got, _, err := d2.Query(q)
					if err != nil {
						t.Fatalf("%s: recovered query %v: %v", phase, q, err)
					}
					want, _, err := oracle.Query(q)
					if err != nil {
						t.Fatalf("%s: oracle query %v: %v", phase, q, err)
					}
					assertTuplesEqual(t, phase+" "+q.String(), sortedTuples(got), sortedTuples(want))
				}
			}
			compare("pre-flush")
			if err := d2.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Flush(); err != nil {
				t.Fatal(err)
			}
			compare("post-flush")
		})
	}
}

// TestShardedDynamicDurableReopen round-trips a sharded durable store
// through a crash and checks per-shard recovery plus topology
// validation.
func TestShardedDynamicDurableReopen(t *testing.T) {
	dir := t.TempDir()
	const bits, shards = 10, 4
	d, err := rsse.OpenShardedDynamic(dir, rsse.LogarithmicBRC, bits, shards, 2, dynOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := rsse.NewShardedDynamic(rsse.LogarithmicBRC, bits, shards, 2, dynOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	driveUpdates(t, bits, d, oracle)
	// Crash without Close.
	rsse.CrashSharded(d)

	if _, err := rsse.OpenShardedDynamic(dir, rsse.LogarithmicBRC, bits, shards+1, 2, dynOptions()...); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	d2, err := rsse.OpenShardedDynamic(dir, rsse.LogarithmicBRC, bits, shards, 2, dynOptions()...)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer d2.Close()
	if err := d2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, q := range randomRanges(bits, 40) {
		got, _, err := d2.Query(q)
		if err != nil {
			t.Fatalf("recovered query %v: %v", q, err)
		}
		want, _, err := oracle.Query(q)
		if err != nil {
			t.Fatalf("oracle query %v: %v", q, err)
		}
		assertTuplesEqual(t, q.String(), sortedTuples(got), sortedTuples(want))
	}
}

// TestCrossShardModifyCrashNeverResurrects is the regression test for
// the cross-shard modify ordering: the tombstone is durably logged on
// the old shard BEFORE the insertion is logged on the new one, so a
// crash between the two — simulated by wiping the new shard's WAL tail
// — may lose the new value but can never bring the old value back.
func TestCrossShardModifyCrashNeverResurrects(t *testing.T) {
	dir := t.TempDir()
	const bits, shards = 10, 2
	d, err := rsse.OpenShardedDynamic(dir, rsse.LogarithmicBRC, bits, shards, 2, dynOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	m := uint64(1) << bits
	oldValue := m / 4     // shard 0
	newValue := 3 * m / 4 // shard 1
	if d.ShardOf(oldValue) == d.ShardOf(newValue) {
		t.Fatal("test values landed on one shard")
	}
	if err := d.Insert(1, oldValue, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// The cross-shard move: tombstone on shard 0 (synced), insertion on
	// shard 1.
	if err := d.Modify(1, oldValue, newValue, []byte("moved")); err != nil {
		t.Fatal(err)
	}
	// Crash between the two records: abandon d and erase the NEW shard's
	// WAL — the insertion is gone, the tombstone must already be durable
	// on the old shard. (Truncating to any prefix behaves the same; empty
	// is the worst case.)
	rsse.CrashSharded(d)
	newShardWAL := filepath.Join(dir, "shard-001", "wal.log")
	blob, err := os.ReadFile(newShardWAL)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) <= 8 {
		t.Fatal("test setup: new shard's WAL does not hold the insertion")
	}
	if err := os.Truncate(newShardWAL, 0); err != nil {
		t.Fatal(err)
	}

	d2, err := rsse.OpenShardedDynamic(dir, rsse.LogarithmicBRC, bits, shards, 2, dynOptions()...)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer d2.Close()
	if err := d2.Flush(); err != nil {
		t.Fatal(err)
	}
	tuples, _, err := d2.Query(rsse.Range{Lo: 0, Hi: m - 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		if tup.ID == 1 && tup.Value == oldValue {
			t.Fatalf("crash between cross-shard records resurrected the old value: %+v", tup)
		}
	}
	// The reverse order would fail exactly this way: verify the old
	// shard's WAL held a synced tombstone by checking the old value is
	// gone even though the insertion never made it.
	if len(tuples) != 0 {
		t.Fatalf("expected no live tuples (insertion lost, tombstone applied), got %+v", tuples)
	}
}

// TestRemoteUpdatesDurable drives the full remote path: rsse-owner-style
// updates over a connection into a served durable Dynamic, a simulated
// server crash, and a restart that recovers everything acknowledged.
func TestRemoteUpdatesDurable(t *testing.T) {
	dir := t.TempDir()
	const bits = 10
	open := func() *rsse.Dynamic {
		d, err := rsse.OpenDynamic(dir, rsse.LogarithmicBRC, bits, 2, dynOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	serve := func(d *rsse.Dynamic) (*rsse.RemoteDynamic, func()) {
		reg := rsse.NewRegistry()
		if err := reg.RegisterWritable(rsse.DefaultDynamicName, d); err != nil {
			t.Fatal(err)
		}
		srv := rsse.NewServer(reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(l) }()
		remote, err := rsse.DialDynamic("tcp", l.Addr().String(), rsse.DefaultDynamicName)
		if err != nil {
			t.Fatal(err)
		}
		return remote, func() { remote.Close(); l.Close() }
	}

	d := open()
	remote, stop := serve(d)
	if err := remote.Insert(1, 100, []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Insert(2, 200, []byte("bob")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := remote.Modify(1, 100, 150, []byte("alice-v2")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Delete(2, 200); err != nil {
		t.Fatal(err)
	}
	// The acknowledged-but-unflushed updates must already be durable:
	// the WAL on disk holds both records BEFORE any flush.
	recs := replayWALFile(t, filepath.Join(dir, "wal.log"))
	if len(recs) != 2 {
		t.Fatalf("WAL holds %d records after 2 acknowledged updates, want 2", len(recs))
	}
	if recs[0].Kind != wal.Modify || recs[1].Kind != wal.Delete {
		t.Fatalf("WAL records out of order: %v, %v", recs[0].Kind, recs[1].Kind)
	}
	stop()        // crash: the server process dies...
	rsse.Crash(d) // ...taking the un-Closed store with it

	d2 := open()
	remote2, stop2 := serve(d2)
	defer stop2()
	if err := remote2.Flush(); err != nil {
		t.Fatal(err)
	}
	tuples, err := remote2.Query(rsse.Range{Lo: 0, Hi: (1 << bits) - 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("recovered store holds %d live tuples, want 1: %+v", len(tuples), tuples)
	}
	if tuples[0].ID != 1 || tuples[0].Value != 150 || string(tuples[0].Payload) != "alice-v2" {
		t.Fatalf("recovered tuple %+v", tuples[0])
	}
	d2.Close()
}

// replayWALFile decodes a WAL file's intact records.
func replayWALFile(t *testing.T, path string) []wal.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, _, _, err := wal.Replay(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
