package rsse

import (
	"errors"
	"fmt"
	"sort"

	"rsse/internal/core"
	"rsse/internal/prf"
)

// Multi-dimensional range search — the paper's stated future work
// ("the considerably harder setting of multi-dimensional range queries",
// Section 9) — implemented here as the standard conjunction baseline:
// one independent single-attribute RSSE instance per attribute, with the
// owner intersecting the per-attribute results.
//
// Security: each attribute's index leaks exactly its single-attribute
// profile, and the server additionally observes the *per-attribute*
// access patterns of a conjunctive query (the ids matching each attribute
// range separately, before intersection). Dedicated multi-dimensional
// schemes avoid that; this baseline makes the trade-off explicit and
// measurable via MultiResult.Stats.

// MultiTuple is a tuple with one value per attribute.
type MultiTuple struct {
	ID      ID
	Values  []Value
	Payload []byte
}

// MultiRange is a conjunctive query: one closed range per attribute. Use
// the attribute's full domain to leave it unconstrained.
type MultiRange []Range

// MultiResult is the outcome of a conjunctive query.
type MultiResult struct {
	// Matches satisfies every per-attribute range.
	Matches []ID
	// PerAttribute holds each attribute's match count — what the server
	// observes before the owner intersects.
	PerAttribute []int
	// Stats aggregates the cost over all attributes.
	Stats QueryStats
}

// MultiClient owns one scheme instance per attribute.
type MultiClient struct {
	clients []*Client
}

// MultiIndex is the server-side state: one index per attribute. Attribute
// 0's tuple store carries the payloads; the others store only their
// attribute values.
type MultiIndex struct {
	indexes []*Index
}

// ErrDimensionMismatch is returned when tuple values or query ranges do
// not match the number of attributes.
var ErrDimensionMismatch = errors.New("rsse: wrong number of attributes")

// NewMultiClient creates a conjunctive client over len(domainBits)
// attributes, each with its own domain. Options apply to every attribute
// instance; when WithMasterKey is used, per-attribute keys are derived
// from it, so a single stored secret suffices to rebuild the client.
func NewMultiClient(kind Kind, domainBits []uint8, opts ...Option) (*MultiClient, error) {
	if len(domainBits) == 0 {
		return nil, errors.New("rsse: at least one attribute required")
	}
	lowered, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	var master prf.Key
	haveMaster := lowered.MasterKey != nil
	if haveMaster {
		if master, err = prf.KeyFromBytes(lowered.MasterKey); err != nil {
			return nil, err
		}
	}
	mc := &MultiClient{clients: make([]*Client, len(domainBits))}
	for d, bits := range domainBits {
		dimOpts := lowered
		if haveMaster {
			k := prf.DeriveN(master, "attribute", uint64(d))
			dimOpts.MasterKey = k[:]
		}
		dom, err := NewDomain(bits)
		if err != nil {
			return nil, fmt.Errorf("attribute %d: %w", d, err)
		}
		inner, err := core.NewClient(kind, dom, dimOpts)
		if err != nil {
			return nil, fmt.Errorf("attribute %d: %w", d, err)
		}
		mc.clients[d] = &Client{inner: inner}
	}
	return mc, nil
}

// Attributes returns the number of attributes.
func (mc *MultiClient) Attributes() int { return len(mc.clients) }

// Kind returns the scheme used by every attribute instance.
func (mc *MultiClient) Kind() Kind { return mc.clients[0].Kind() }

// BuildIndex encrypts the tuples into one index per attribute.
func (mc *MultiClient) BuildIndex(tuples []MultiTuple) (*MultiIndex, error) {
	dims := len(mc.clients)
	for _, t := range tuples {
		if len(t.Values) != dims {
			return nil, fmt.Errorf("%w: tuple %d has %d values, want %d",
				ErrDimensionMismatch, t.ID, len(t.Values), dims)
		}
	}
	mi := &MultiIndex{indexes: make([]*Index, dims)}
	for d := 0; d < dims; d++ {
		sub := make([]Tuple, len(tuples))
		for i, t := range tuples {
			sub[i] = Tuple{ID: t.ID, Value: t.Values[d]}
			if d == 0 {
				sub[i].Payload = t.Payload
			}
		}
		idx, err := mc.clients[d].BuildIndex(sub)
		if err != nil {
			return nil, fmt.Errorf("attribute %d: %w", d, err)
		}
		mi.indexes[d] = idx
	}
	return mi, nil
}

// Size sums the per-attribute index sizes.
func (mi *MultiIndex) Size() int {
	n := 0
	for _, idx := range mi.indexes {
		n += idx.Size()
	}
	return n
}

// Attribute exposes one attribute's index (e.g. to serve it separately).
func (mi *MultiIndex) Attribute(d int) *Index { return mi.indexes[d] }

// Query runs one single-attribute query per attribute and intersects the
// matches at the owner.
func (mc *MultiClient) Query(mi *MultiIndex, q MultiRange) (*MultiResult, error) {
	dims := len(mc.clients)
	if len(q) != dims {
		return nil, fmt.Errorf("%w: query has %d ranges, want %d", ErrDimensionMismatch, len(q), dims)
	}
	if len(mi.indexes) != dims {
		return nil, fmt.Errorf("%w: index has %d attributes, want %d", ErrDimensionMismatch, len(mi.indexes), dims)
	}
	out := &MultiResult{PerAttribute: make([]int, dims)}
	var inter map[ID]int
	for d := 0; d < dims; d++ {
		res, err := mc.clients[d].Query(mi.indexes[d], q[d])
		if err != nil {
			return nil, fmt.Errorf("attribute %d: %w", d, err)
		}
		out.PerAttribute[d] = len(res.Matches)
		out.Stats.Rounds += res.Stats.Rounds
		out.Stats.Tokens += res.Stats.Tokens
		out.Stats.TokenBytes += res.Stats.TokenBytes
		out.Stats.ResponseItems += res.Stats.ResponseItems
		out.Stats.Raw += res.Stats.Raw
		out.Stats.FalsePositives += res.Stats.FalsePositives
		if d == 0 {
			inter = make(map[ID]int, len(res.Matches))
			for _, id := range res.Matches {
				inter[id] = 1
			}
			continue
		}
		for _, id := range res.Matches {
			if inter[id] == d {
				inter[id] = d + 1
			}
		}
	}
	for id, seen := range inter {
		if seen == dims {
			out.Matches = append(out.Matches, id)
		}
	}
	sort.Slice(out.Matches, func(i, j int) bool { return out.Matches[i] < out.Matches[j] })
	out.Stats.Matches = len(out.Matches)
	return out, nil
}

// FetchTuple reassembles a full multi-attribute tuple: the payload from
// attribute 0's store and each attribute's value from its own store.
func (mc *MultiClient) FetchTuple(mi *MultiIndex, id ID) (MultiTuple, error) {
	out := MultiTuple{ID: id, Values: make([]Value, len(mc.clients))}
	for d, c := range mc.clients {
		tup, err := c.FetchTuple(mi.indexes[d], id)
		if err != nil {
			return MultiTuple{}, fmt.Errorf("attribute %d: %w", d, err)
		}
		out.Values[d] = tup.Value
		if d == 0 {
			out.Payload = tup.Payload
		}
	}
	return out, nil
}
