module rsse

go 1.24
