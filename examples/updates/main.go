// Updates: batched inserts, deletions and modifications with forward
// privacy (Section 7 of the paper).
//
// An IoT fleet appends sensor readings in batches; stale readings are
// deleted, corrected ones are modified. Each flushed batch becomes an
// independent static index under fresh keys; batches consolidate like a
// log-structured merge tree so the server never holds more than
// O(s log_s b) indexes.
//
// Run with: go run ./examples/updates
package main

import (
	"fmt"
	"log"
	mrand "math/rand"

	"rsse"
)

func main() {
	// Readings in 0..2^16, consolidation step s = 3.
	store, err := rsse.NewDynamic(rsse.LogarithmicURC, 16, 3, rsse.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	rnd := mrand.New(mrand.NewSource(1))

	nextID := uint64(1)
	fmt.Printf("%6s %8s %14s %12s\n", "batch", "ops", "activeIndexes", "totalIndex")
	for batch := 1; batch <= 10; batch++ {
		for i := 0; i < 200; i++ {
			store.Insert(nextID, rnd.Uint64()%65536, fmt.Appendf(nil, "reading-%d", nextID))
			nextID++
		}
		if err := store.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8d %14d %10.1fKB\n",
			batch, 200, store.ActiveIndexes(), float64(store.TotalIndexSize())/1024)
	}

	q := rsse.Range{Lo: 10000, Hi: 20000}
	tuples, stats, err := store.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %v: %d live readings across %d indexes (%d tokens)\n",
		q, len(tuples), stats.Indexes, stats.Tokens)

	// Correct one reading and delete another; the changes land in a new
	// batch — older indexes are never touched (forward privacy: tokens
	// issued before this flush cannot match the new batch).
	victim, corrected := tuples[0], tuples[1]
	store.Delete(victim.ID, victim.Value)
	store.Modify(corrected.ID, corrected.Value, 15000, []byte("corrected"))
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	after, _, err := store.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete+modify: %d live readings\n", len(after))
	for _, t := range after {
		if t.ID == corrected.ID && string(t.Payload) != "corrected" {
			log.Fatalf("modification lost: %+v", t)
		}
		if t.ID == victim.ID {
			log.Fatalf("deleted reading still visible: %+v", t)
		}
	}

	// Periodic global rebuild: one index, tombstones gone.
	if err := store.FullConsolidate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after full consolidation: %d active index (size %.1fKB)\n",
		store.ActiveIndexes(), float64(store.TotalIndexSize())/1024)
}
