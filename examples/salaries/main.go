// Salaries: range search under heavy data skew — the USPS-style workload
// where Logarithmic-SRC degrades and Logarithmic-SRC-i shines
// (Sections 6.2-6.3, Figure 6(b)).
//
// A payroll processor outsources employee records queryable by annual
// salary. Salaries are heavily skewed: a handful of standard pay grades
// cover most of the workforce. This example shows Logarithmic-SRC
// dragging in the hot pay grade as false positives while the interactive
// Logarithmic-SRC-i caps the overshoot at 4x the true result.
//
// Run with: go run ./examples/salaries
package main

import (
	"fmt"
	"log"
	mrand "math/rand"

	"rsse"
)

const domainBits = 19 // salaries up to ~524k, like the paper's USPS field

func main() {
	rnd := mrand.New(mrand.NewSource(42))

	// 10000 employees, 90% of them on five standard pay grades, the rest
	// spread thinly — roughly the paper's "5% distinct values".
	grades := []uint64{31200, 38750, 45000, 52300, 61800}
	tuples := make([]rsse.Tuple, 10000)
	for i := range tuples {
		var salary uint64
		if rnd.Float64() < 0.9 {
			salary = grades[rnd.Intn(len(grades))]
		} else {
			salary = 25000 + rnd.Uint64()%175000
		}
		tuples[i] = rsse.Tuple{ID: uint64(i + 1), Value: salary,
			Payload: fmt.Appendf(nil, "employee-%05d", i)}
	}

	// Queries around (but not over) the hot grades: narrow audit windows.
	queries := []rsse.Range{
		{Lo: 45100, Hi: 46100}, // just above a hot grade
		{Lo: 53000, Hi: 56000},
		{Lo: 39000, Hi: 41000},
		{Lo: 62000, Hi: 70000},
		{Lo: 30000, Hi: 31000}, // just below a hot grade
	}

	for _, kind := range []rsse.Kind{rsse.LogarithmicSRC, rsse.LogarithmicSRCi} {
		client, err := rsse.NewClient(kind, domainBits, rsse.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		index, err := client.BuildIndex(tuples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (index %.1f MB)\n", kind, float64(index.Size())/(1<<20))
		fmt.Printf("  %-22s %8s %8s %8s\n", "query", "matches", "returned", "FPs")
		for _, q := range queries {
			res, err := client.Query(index, q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s %8d %8d %8d\n",
				q.String(), len(res.Matches), res.Stats.Raw, res.Stats.FalsePositives)
		}
	}
	fmt.Println("\nSRC's single window swallows a hot pay grade whenever the query")
	fmt.Println("lands near one; SRC-i's second round keeps returns within 4x of")
	fmt.Println("the true result regardless of skew.")
}
