// Leakage: what does the server actually observe? This example makes the
// paper's leakage hierarchy (Table 1's Security column) tangible by
// printing, for each scheme, the query-time observables of the same
// workload: token counts, token level multisets, and result partitions.
//
// Run with: go run ./examples/leakage
package main

import (
	"fmt"
	"log"
	"sort"

	"rsse"
)

func main() {
	const bits = 12
	// A fixed dataset so group sizes are comparable across schemes.
	tuples := make([]rsse.Tuple, 0, 1024)
	for v := uint64(0); v < 4096; v += 4 {
		tuples = append(tuples, rsse.Tuple{ID: v/4 + 1, Value: v})
	}

	// Two queries of identical size R = 333 at different positions: what
	// can the server tell apart?
	qa := rsse.Range{Lo: 100, Hi: 432}
	qb := rsse.Range{Lo: 2111, Hi: 2443}

	for _, kind := range []rsse.Kind{
		rsse.ConstantBRC, rsse.ConstantURC,
		rsse.LogarithmicBRC, rsse.LogarithmicURC,
		rsse.LogarithmicSRC, rsse.LogarithmicSRCi,
	} {
		client, err := rsse.NewClient(kind, bits,
			rsse.WithSeed(5), rsse.AllowIntersectingQueries())
		if err != nil {
			log.Fatal(err)
		}
		index, err := client.BuildIndex(tuples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", kind)
		for _, q := range []rsse.Range{qa, qb} {
			res, err := client.Query(index, q)
			if err != nil {
				log.Fatal(err)
			}
			levels := append([]uint8(nil), res.Stats.TokenLevels...)
			sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
			groups := append([]int(nil), res.Stats.Groups...)
			sort.Ints(groups)
			fmt.Printf("  query %-14s tokens=%-2d", q.String(), res.Stats.Tokens)
			if len(levels) > 0 {
				fmt.Printf(" levels=%v", levels)
			}
			fmt.Printf(" groups=%v\n", groups)
		}
	}

	fmt.Println(`
Reading the output:
  - Constant/Logarithmic-BRC: token count AND level multiset vary with the
    query position — the server can sometimes tell where a range cannot be.
  - Constant/Logarithmic-URC: identical token counts and levels for any
    two same-size ranges; only the result partition sizes differ.
  - Logarithmic-SRC: a single token and a single undivided group — the
    server cannot even partition the results.
  - Logarithmic-SRC-i: two tokens (two rounds), still unpartitioned.`)
}
