// Check-ins: time-range analytics over an outsourced geo-social feed —
// the Gowalla-style workload that motivates the paper's evaluation.
//
// A mobility startup stores user check-ins with an untrusted cloud and
// wants "all check-ins between t1 and t2" without revealing timestamps,
// their distribution, or the query windows. This example indexes the
// same near-uniform stream under every practical scheme and contrasts
// their storage and query profiles.
//
// Run with: go run ./examples/checkins
package main

import (
	"fmt"
	"log"
	mrand "math/rand"

	"rsse"
)

const (
	domainBits = 22 // ~4.2M timestamp ticks
	numTuples  = 20000
	numQueries = 40
)

func main() {
	// Near-uniform check-in timestamps (Gowalla is 95% distinct values).
	rnd := mrand.New(mrand.NewSource(2016))
	tuples := make([]rsse.Tuple, numTuples)
	for i := range tuples {
		tuples[i] = rsse.Tuple{
			ID:      uint64(i + 1),
			Value:   rnd.Uint64() % (1 << domainBits),
			Payload: fmt.Appendf(nil, "user-%04d", rnd.Intn(500)),
		}
	}

	// One-hour-ish windows at random positions.
	queries := make([]rsse.Range, numQueries)
	for i := range queries {
		R := uint64(1 << 12)
		lo := rnd.Uint64() % ((1 << domainBits) - R)
		queries[i] = rsse.Range{Lo: lo, Hi: lo + R - 1}
	}

	kinds := []rsse.Kind{
		rsse.ConstantBRC, rsse.ConstantURC,
		rsse.LogarithmicBRC, rsse.LogarithmicURC,
		rsse.LogarithmicSRC, rsse.LogarithmicSRCi,
	}
	fmt.Printf("%-18s %12s %10s %10s %10s %8s\n",
		"scheme", "index", "postings", "tokens/q", "FP rate", "rounds")
	for _, kind := range kinds {
		client, err := rsse.NewClient(kind, domainBits,
			rsse.WithSeed(7), rsse.AllowIntersectingQueries())
		if err != nil {
			log.Fatal(err)
		}
		index, err := client.BuildIndex(tuples)
		if err != nil {
			log.Fatal(err)
		}
		var tokens, raw, fps, rounds int
		for _, q := range queries {
			res, err := client.Query(index, q)
			if err != nil {
				log.Fatal(err)
			}
			tokens += res.Stats.Tokens
			raw += res.Stats.Raw
			fps += res.Stats.FalsePositives
			rounds += res.Stats.Rounds
		}
		fpRate := 0.0
		if raw > 0 {
			fpRate = float64(fps) / float64(raw)
		}
		fmt.Printf("%-18s %10.1fMB %10d %10.1f %9.1f%% %8.1f\n",
			kind, float64(index.Size())/(1<<20), index.Postings(),
			float64(tokens)/numQueries, 100*fpRate, float64(rounds)/numQueries)
	}
	fmt.Println("\nOn near-uniform data the SRC schemes pay little for their")
	fmt.Println("constant-size queries; Constant-* keeps the smallest index.")
}
