// Quickstart: outsource an encrypted table and run private range queries.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rsse"
)

func main() {
	// The owner picks a scheme and a domain. Logarithmic-SRC-i is the
	// paper's best security/efficiency trade-off: constant query size,
	// bounded false positives even under skew.
	client, err := rsse.NewClient(rsse.LogarithmicSRCi, 16) // values in 0..65535
	if err != nil {
		log.Fatal(err)
	}

	// A toy employee table; Value is the queryable attribute (age, say),
	// Payload is the record body, stored encrypted.
	tuples := []rsse.Tuple{
		{ID: 1, Value: 34, Payload: []byte("alice | engineering")},
		{ID: 2, Value: 29, Payload: []byte("bob   | sales")},
		{ID: 3, Value: 41, Payload: []byte("carol | research")},
		{ID: 4, Value: 34, Payload: []byte("dave  | operations")},
		{ID: 5, Value: 57, Payload: []byte("erin  | management")},
	}

	// BuildIndex produces the server-side state: encrypted indexes plus
	// the encrypted tuple store. No key material inside.
	index, err := client.BuildIndex(tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outsourced %d tuples: index %d bytes, encrypted store %d bytes\n",
		index.N(), index.Size(), index.StoreSize())

	// Query: who is between 30 and 45? The server executes the search on
	// ciphertext; the owner filters any false positives and decrypts.
	q := rsse.Range{Lo: 30, Hi: 45}
	res, err := client.Query(index, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %v → %d matches (%d rounds, %d token bytes, %d false positives dropped)\n",
		q, len(res.Matches), res.Stats.Rounds, res.Stats.TokenBytes, res.Stats.FalsePositives)

	for _, id := range res.Matches {
		tup, err := client.FetchTuple(index, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  id %d  value %2d  %s\n", tup.ID, tup.Value, tup.Payload)
	}
}
