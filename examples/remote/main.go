// Remote: the owner and the untrusted server as separate parties over
// TCP. The server process holds only the encrypted index — no keys — and
// the full (interactive, for SRC-i) query protocol runs across the wire.
//
// This example runs both parties in one process for convenience; the
// cmd/rsse-server and cmd/rsse-owner binaries split them for real.
//
// Run with: go run ./examples/remote
package main

import (
	"fmt"
	"log"
	mrand "math/rand"
	"net"

	"rsse"
)

func main() {
	// ----- Owner side: build the encrypted index.
	client, err := rsse.NewClient(rsse.LogarithmicSRCi, 16)
	if err != nil {
		log.Fatal(err)
	}
	rnd := mrand.New(mrand.NewSource(99))
	tuples := make([]rsse.Tuple, 5000)
	for i := range tuples {
		tuples[i] = rsse.Tuple{
			ID:      uint64(i + 1),
			Value:   rnd.Uint64() % 65536,
			Payload: fmt.Appendf(nil, "record-%05d", i),
		}
	}
	index, err := client.BuildIndex(tuples)
	if err != nil {
		log.Fatal(err)
	}

	// ----- Server side: serve the index on a loopback port. In a real
	// deployment this runs in another process (see cmd/rsse-server); the
	// index can cross the boundary via index.MarshalBinary().
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := rsse.Serve(l, index); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("server: %d tuples (%.1f MB index) on %s — holds no keys\n",
		index.N(), float64(index.Size())/(1<<20), l.Addr())

	// ----- Owner side again: dial and query over the network.
	remote, err := rsse.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	for _, q := range []rsse.Range{{Lo: 1000, Hi: 2000}, {Lo: 60000, Hi: 65535}} {
		res, err := client.QueryRemote(remote, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %v over TCP: %d matches, %d rounds, %d token bytes, %d FPs dropped\n",
			q, len(res.Matches), res.Stats.Rounds, res.Stats.TokenBytes, res.Stats.FalsePositives)
		if len(res.Matches) > 0 {
			tup, err := client.FetchTupleRemote(remote, res.Matches[0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  fetched id %d: value=%d payload=%s\n", tup.ID, tup.Value, tup.Payload)
		}
	}
}
