package rsse

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rsse/internal/cover"
	"rsse/internal/lsm"
	"rsse/internal/prf"
	"rsse/internal/shard"
	"rsse/internal/wal"
)

// Dynamic is the updatable store of Section 7: updates are buffered into
// batches, every flushed batch becomes an independent static index under
// a fresh key, and batches consolidate hierarchically (an s-ary
// log-structured merge tree, as in Vertica-style bulk loading).
//
// The construction achieves forward privacy — a search token issued
// before an update cannot match data added after it — using only the
// static schemes of this module, with at most O(s·log_s b) active indexes
// after b batches.
//
// A Dynamic store created with NewDynamic lives in memory only; one
// opened with OpenDynamic is durable: every update hits a checksummed
// write-ahead log before it is buffered, sealed epochs persist as index
// files, and reopening the directory recovers the exact pre-crash
// state. See OpenDynamic for the recovery semantics.
//
// A Dynamic store is not safe for concurrent use (Registry.
// RegisterWritable wraps one in a serializing adapter for serving).
type Dynamic struct {
	inner *lsm.Manager
}

// UpdateStats aggregates the per-epoch costs of one query over a Dynamic
// store.
type UpdateStats = lsm.QueryStats

// DefaultConsolidationStep is the consolidation step s used when 0 is
// passed to NewDynamic: small enough to merge frequently (good under
// deletions), large enough to amortize re-encryption.
const DefaultConsolidationStep = 4

// NewDynamic creates an updatable store for the given scheme and domain.
// consolidationStep is the paper's parameter s (how many sibling indexes
// trigger a merge); pass 0 for the default. Options apply to every
// per-epoch client; per-epoch keys are derived internally.
func NewDynamic(kind Kind, domainBits uint8, consolidationStep int, opts ...Option) (*Dynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	lowered, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := lsm.NewManager(kind, dom, consolidationStep, lowered)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// newDynamicWithMaster is NewDynamic with the epoch-key master fixed —
// the sharded store derives one master per shard from its cluster key.
func newDynamicWithMaster(kind Kind, dom cover.Domain, consolidationStep int, master prf.Key, opts []Option) (*Dynamic, error) {
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	lowered, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := lsm.NewManagerWithMaster(kind, dom, consolidationStep, master, lowered)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// MasterKeyFileName is the hex-encoded master secret OpenDynamic keeps
// inside a durable directory; ClusterKeyFileName is its OpenSharded-
// Dynamic counterpart at the root. The directory therefore holds key
// material: it is OWNER-side state (or state of a trusted write
// gateway), never something to hand to the untrusted query server.
const (
	MasterKeyFileName  = "master.key"
	ClusterKeyFileName = "cluster.key"
)

// DynamicMeta is the recoverable identity of a durable directory: the
// parameters it was created with, readable without any key.
type DynamicMeta struct {
	Kind       Kind
	DomainBits uint8
	Step       int
}

// PeekDynamicDir reads the parameters a durable Dynamic directory was
// created with — how rsse-server adopts an existing directory instead
// of requiring them re-specified. os.IsNotExist(err) distinguishes a
// fresh directory.
func PeekDynamicDir(dir string) (DynamicMeta, error) {
	meta, err := lsm.ReadManagerMeta(dir)
	if err != nil {
		return DynamicMeta{}, err
	}
	return DynamicMeta{Kind: meta.Kind, DomainBits: meta.DomainBits, Step: meta.Step}, nil
}

// OpenDynamic opens (creating if fresh) a durable updatable store
// rooted at dir. Layout: a hex master key (master.key), a checksummed
// write-ahead log (wal.log), one sealed v2 index container per epoch
// (epoch-<seq>.idx) and the epoch manifest (epochs.json) whose atomic
// rename is the commit point of every flush.
//
// Recovery is exact: reopening after a crash loads the persisted
// epochs, replays the WAL tail into the pending buffer (truncating the
// torn record a mid-append crash may leave), skips records the manifest
// already covers, and resumes consolidation where it left off — the
// reopened store answers every query byte-identically to one that
// never crashed. Updates acknowledged under WithSyncEvery(1), the
// default, are never lost; under WithSyncEvery(n) at most the last n-1
// may be.
//
// The parameters must match the directory's manifest on reopen
// (PeekDynamicDir reads them); a mismatch fails rather than corrupting
// the store. Options must repeat whatever construction options
// (WithSSE, WithStorage, ...) the directory was created with.
func OpenDynamic(dir string, kind Kind, domainBits uint8, consolidationStep int, opts ...Option) (*Dynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	cfg, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	lowered, err := cfg.lower()
	if err != nil {
		return nil, err
	}
	master, err := loadOrCreateKey(dir, MasterKeyFileName)
	if err != nil {
		return nil, err
	}
	syncEvery := cfg.syncEvery
	if syncEvery == 0 {
		syncEvery = 1
	}
	inner, err := lsm.OpenManager(dir, kind, dom, consolidationStep, master, lowered, syncEvery)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// loadOrCreateKey reads the hex key file inside dir, drawing and
// persisting a fresh one (0600) on first open. Creation is durable
// (fsynced file and directory entry — a key that evaporates in a power
// failure would orphan every epoch committed under it) AND exclusive:
// the key lands via a non-clobbering link, so two processes racing on a
// fresh directory both end up using the one key that won, never a key
// on disk that differs from the key epochs were sealed under.
func loadOrCreateKey(dir, name string) (prf.Key, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return prf.Key{}, err
	}
	path := filepath.Join(dir, name)
	readKey := func() (prf.Key, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return prf.Key{}, err
		}
		raw, err := hex.DecodeString(strings.TrimSpace(string(blob)))
		if err != nil {
			return prf.Key{}, fmt.Errorf("rsse: %s: %w", path, err)
		}
		return prf.KeyFromBytes(raw)
	}
	if k, err := readKey(); err == nil {
		return k, nil
	} else if !os.IsNotExist(err) {
		return prf.Key{}, err
	}
	key, err := prf.NewKey(nil)
	if err != nil {
		return prf.Key{}, err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return prf.Key{}, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(hex.EncodeToString(key[:]) + "\n"); err != nil {
		tmp.Close()
		return prf.Key{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return prf.Key{}, err
	}
	if err := tmp.Close(); err != nil {
		return prf.Key{}, err
	}
	if err := os.Chmod(tmp.Name(), 0o600); err != nil {
		return prf.Key{}, err
	}
	if err := os.Link(tmp.Name(), path); err != nil {
		if os.IsExist(err) {
			return readKey() // another open won the race; use its key
		}
		return prf.Key{}, err
	}
	if err := wal.SyncDir(dir); err != nil {
		return prf.Key{}, err
	}
	return key, nil
}

// Insert buffers a tuple insertion for the next batch. On a durable
// store a nil return means the insertion is in the write-ahead log,
// synced per the WithSyncEvery policy — it survives a crash.
func (d *Dynamic) Insert(id ID, value Value, payload []byte) error {
	return d.inner.Insert(id, value, payload)
}

// Delete buffers a deletion. value must be the victim's current attribute
// value: the tombstone is indexed under it so matching range queries
// retrieve and cancel the victim. Durable stores log before buffering,
// as with Insert.
func (d *Dynamic) Delete(id ID, value Value) error {
	return d.inner.Delete(id, value)
}

// Modify buffers a value/payload change (a tombstone under the old value
// plus an insertion under the new one). On a durable store the pair is
// one atomic WAL record: recovery can never keep half a modification.
func (d *Dynamic) Modify(id ID, oldValue, newValue Value, payload []byte) error {
	return d.inner.Modify(id, oldValue, newValue, payload)
}

// Flush seals the pending batch into a fresh encrypted index and runs any
// due consolidations. Flushing with nothing pending is a no-op.
func (d *Dynamic) Flush() error { return d.inner.Flush() }

// Query runs the range query against every active index, resolves the
// per-id operation history owner-side (newest operation wins, tombstones
// cancel their victims) and returns the live tuples.
func (d *Dynamic) Query(q Range) ([]Tuple, UpdateStats, error) {
	return d.inner.Query(q)
}

// QueryContext is Query with cancellation: the per-epoch fan-out aborts
// when ctx is done.
func (d *Dynamic) QueryContext(ctx context.Context, q Range) ([]Tuple, UpdateStats, error) {
	return d.inner.QueryContext(ctx, q)
}

// QueryBatch answers several ranges in one pass over the active indexes:
// every epoch receives a single batched sub-query with the ranges'
// covers deduplicated, so the LSM's per-epoch fan-out cost is paid once
// per batch instead of once per range. Results are per input range, in
// input order.
func (d *Dynamic) QueryBatch(qs []Range) ([][]Tuple, UpdateStats, error) {
	return d.QueryBatchContext(context.Background(), qs)
}

// QueryBatchContext is QueryBatch with cancellation.
func (d *Dynamic) QueryBatchContext(ctx context.Context, qs []Range) ([][]Tuple, UpdateStats, error) {
	return d.inner.QueryBatchOnContext(ctx, d.inner.LocalEpochs(), qs)
}

// FullConsolidate merges every active index into one and drops
// tombstones — the periodic global rebuild.
func (d *Dynamic) FullConsolidate() error { return d.inner.FullConsolidate() }

// Durable reports whether the store persists to a directory.
func (d *Dynamic) Durable() bool { return d.inner.Durable() }

// Dir returns the durable directory ("" for a memory-only store).
func (d *Dynamic) Dir() string { return d.inner.Dir() }

// Close syncs and closes the write-ahead log of a durable store (no-op
// for a memory-only one). Pending updates are NOT flushed: they are
// already durable in the WAL and reopen exactly as pending — call Flush
// first to seal them into an epoch instead.
func (d *Dynamic) Close() error { return d.inner.Close() }

// sync forces the WAL to stable storage regardless of the fsync policy
// — the ordering barrier cross-shard modifications use.
func (d *Dynamic) sync() error { return d.inner.Sync() }

// Pending returns the number of buffered, unflushed operations.
func (d *Dynamic) Pending() int { return d.inner.Pending() }

// ActiveIndexes returns how many indexes the server currently holds.
func (d *Dynamic) ActiveIndexes() int { return d.inner.ActiveIndexes() }

// Batches returns how many batches have been flushed so far.
func (d *Dynamic) Batches() uint64 { return d.inner.Batches() }

// TotalIndexSize sums the serialized sizes of all active indexes.
func (d *Dynamic) TotalIndexSize() int { return d.inner.TotalIndexSize() }

// ShardedDynamic range-partitions an updatable store: each shard runs
// its own Dynamic LSM (own epochs, own derived keys), and every update
// routes to the shard owning the tuple's value. A modification whose old
// and new values live on different shards splits into a tombstone on the
// old owner and an insertion on the new one — the cross-shard move is
// two ordinary single-shard updates, so per-shard forward privacy is
// untouched.
//
// Like Dynamic, a ShardedDynamic is not safe for concurrent use; its
// queries still fan out over the shards in parallel internally.
type ShardedDynamic struct {
	m      shard.Map
	stores []*Dynamic
}

// NewShardedDynamic creates a sharded updatable store with the given
// number of equal-width shards. consolidationStep and opts apply to
// every shard's LSM; each shard's epoch keys derive from its own master,
// itself derived from a fresh cluster key.
func NewShardedDynamic(kind Kind, domainBits uint8, shards, consolidationStep int, opts ...Option) (*ShardedDynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	m, err := shard.EqualWidth(dom, shards)
	if err != nil {
		return nil, err
	}
	master, err := prf.NewKey(nil)
	if err != nil {
		return nil, err
	}
	d := &ShardedDynamic{m: m, stores: make([]*Dynamic, m.K())}
	for i := range d.stores {
		shardMaster := prf.DeriveN(master, "cluster/dynamic", uint64(i))
		d.stores[i], err = newDynamicWithMaster(kind, dom, consolidationStep, shardMaster, opts)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// shardedManifestName is the root manifest of a durable sharded store,
// recording the topology so reopening with different parameters fails
// instead of mis-deriving shard keys.
const shardedManifestName = "sharded.json"

// shardedManifest is the JSON body of sharded.json.
type shardedManifest struct {
	Version    int    `json:"version"`
	Kind       string `json:"kind"`
	DomainBits uint8  `json:"domain_bits"`
	Shards     int    `json:"shards"`
	Step       int    `json:"step"`
}

// shardDirName is the per-shard subdirectory under a sharded root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// OpenShardedDynamic opens (creating if fresh) a durable sharded
// updatable store rooted at dir: a cluster key and topology manifest at
// the root, one durable Dynamic directory per shard underneath
// (shard-000/, shard-001/, ...), each with its own WAL, epochs and
// manifest — a hot shard's durability traffic never contends with a
// cold one's. Every shard's master derives from the root cluster key,
// so the whole store recovers from one directory tree.
//
// Recovery, parameter validation and the WithSyncEvery policy are as
// for OpenDynamic, applied per shard; the root manifest additionally
// pins the shard count.
func OpenShardedDynamic(dir string, kind Kind, domainBits uint8, shards, consolidationStep int, opts ...Option) (*ShardedDynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	m, err := shard.EqualWidth(dom, shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	manPath := filepath.Join(dir, shardedManifestName)
	if blob, err := os.ReadFile(manPath); err == nil {
		var man shardedManifest
		if err := json.Unmarshal(blob, &man); err != nil {
			return nil, fmt.Errorf("rsse: %s: %w", manPath, err)
		}
		if man.Kind != kind.String() || man.DomainBits != domainBits || man.Shards != shards || man.Step != consolidationStep {
			return nil, fmt.Errorf("%w: root holds %s/2^%d/%d shards/step %d, caller asked %s/2^%d/%d shards/step %d",
				lsm.ErrManifestMismatch, man.Kind, man.DomainBits, man.Shards, man.Step,
				kind, domainBits, shards, consolidationStep)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		blob, err := json.MarshalIndent(shardedManifest{
			Version: 1, Kind: kind.String(), DomainBits: domainBits,
			Shards: shards, Step: consolidationStep,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := lsm.WriteFileDurable(dir, shardedManifestName, blob); err != nil {
			return nil, err
		}
	}
	master, err := loadOrCreateKey(dir, ClusterKeyFileName)
	if err != nil {
		return nil, err
	}
	cfg, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	lowered, err := cfg.lower()
	if err != nil {
		return nil, err
	}
	syncEvery := cfg.syncEvery
	if syncEvery == 0 {
		syncEvery = 1
	}
	d := &ShardedDynamic{m: m, stores: make([]*Dynamic, m.K())}
	for i := range d.stores {
		shardMaster := prf.DeriveN(master, "cluster/dynamic", uint64(i))
		inner, err := lsm.OpenManager(filepath.Join(dir, shardDirName(i)), kind, dom, consolidationStep, shardMaster, lowered, syncEvery)
		if err != nil {
			// Release the WALs (and advisory locks) of the shards that
			// did open, or a same-process retry after fixing the failed
			// shard would hit ErrLocked on every earlier one.
			for _, s := range d.stores[:i] {
				s.Close()
			}
			return nil, fmt.Errorf("rsse: opening shard %d: %w", i, err)
		}
		d.stores[i] = &Dynamic{inner: inner}
	}
	return d, nil
}

// Close closes every shard's write-ahead log (see Dynamic.Close).
func (d *ShardedDynamic) Close() error {
	var first error
	for _, s := range d.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shards returns the number of shards.
func (d *ShardedDynamic) Shards() int { return d.m.K() }

// ShardRange returns the closed value interval shard i owns.
func (d *ShardedDynamic) ShardRange(i int) Range { return d.m.ShardRange(i) }

// ShardOf returns the shard that owns value v.
func (d *ShardedDynamic) ShardOf(v Value) int { return d.m.Owner(v) }

// Insert buffers a tuple insertion on the shard owning value.
func (d *ShardedDynamic) Insert(id ID, value Value, payload []byte) error {
	return d.stores[d.m.Owner(value)].Insert(id, value, payload)
}

// Delete buffers a deletion on the shard owning the victim's current
// value (the tombstone must land where the insertion lives).
func (d *ShardedDynamic) Delete(id ID, value Value) error {
	return d.stores[d.m.Owner(value)].Delete(id, value)
}

// Modify buffers a value/payload change. When both values belong to one
// shard this is that shard's ordinary modify — one atomic WAL record on
// a durable store. Across shards it becomes a tombstone on the old
// owner plus an insertion on the new one, and the two are strictly
// ordered: the tombstone is logged AND forced to stable storage before
// the insertion is logged. A crash between them can therefore lose the
// not-yet-acknowledged insertion (the tuple is gone until retried, as
// for any unacknowledged update), but it can never resurrect the old
// value — recovery either sees both records or only the tombstone,
// never only the insertion.
func (d *ShardedDynamic) Modify(id ID, oldValue, newValue Value, payload []byte) error {
	oldShard, newShard := d.m.Owner(oldValue), d.m.Owner(newValue)
	if oldShard == newShard {
		return d.stores[oldShard].Modify(id, oldValue, newValue, payload)
	}
	if err := d.stores[oldShard].Delete(id, oldValue); err != nil {
		return err
	}
	// The ordering barrier: per-shard WALs sync independently, so
	// without this a lazy fsync policy could make the insertion durable
	// while the tombstone is still in the page cache.
	if err := d.stores[oldShard].sync(); err != nil {
		return err
	}
	return d.stores[newShard].Insert(id, newValue, payload)
}

// Flush seals every shard's pending batch. Shards with nothing pending
// are untouched — flushing is per shard, so a hot shard's epochs grow
// independently of a cold one's.
func (d *ShardedDynamic) Flush() error {
	for i, s := range d.stores {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("rsse: flushing shard %d: %w", i, err)
		}
	}
	return nil
}

// FullConsolidate rebuilds every shard into a single index each.
func (d *ShardedDynamic) FullConsolidate() error {
	for i, s := range d.stores {
		if err := s.FullConsolidate(); err != nil {
			return fmt.Errorf("rsse: consolidating shard %d: %w", i, err)
		}
	}
	return nil
}

// Query splits the range at shard boundaries, runs the per-shard LSM
// fan-out queries concurrently through the same scatter-gather engine
// cluster queries use (each shard's stores are independent), and merges
// the live tuples and stats.
func (d *ShardedDynamic) Query(q Range) ([]Tuple, UpdateStats, error) {
	return d.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: cancelling ctx aborts the
// scatter.
func (d *ShardedDynamic) QueryContext(ctx context.Context, q Range) ([]Tuple, UpdateStats, error) {
	if err := d.m.Domain().CheckRange(q.Lo, q.Hi); err != nil {
		return nil, UpdateStats{}, err
	}
	type answer struct {
		tuples []Tuple
		stats  UpdateStats
	}
	outcomes, err := shard.Run(ctx, shard.Executor{}, d.m.Split(q),
		func(ctx context.Context, t shard.Task) (answer, error) {
			tuples, stats, err := d.stores[t.Shard].QueryContext(ctx, t.Range)
			return answer{tuples: tuples, stats: stats}, err
		})
	if err != nil {
		return nil, UpdateStats{}, fmt.Errorf("rsse: sharded query: %w", err)
	}
	var (
		out   []Tuple
		stats UpdateStats
	)
	for _, o := range outcomes {
		out = append(out, o.Res.tuples...)
		mergeUpdateStats(&stats, o.Res.stats)
	}
	return out, stats, nil
}

// QueryBatch answers several ranges across the sharded store: the
// ranges' slices group by owning shard and each shard runs one batched
// LSM sub-query over its slices (covers deduplicated per epoch), all
// shards concurrently. Results are per input range, in input order.
func (d *ShardedDynamic) QueryBatch(qs []Range) ([][]Tuple, UpdateStats, error) {
	return d.QueryBatchContext(context.Background(), qs)
}

// QueryBatchContext is QueryBatch with cancellation.
func (d *ShardedDynamic) QueryBatchContext(ctx context.Context, qs []Range) ([][]Tuple, UpdateStats, error) {
	for _, q := range qs {
		if err := d.m.Domain().CheckRange(q.Lo, q.Hi); err != nil {
			return nil, UpdateStats{}, err
		}
	}
	type answer struct {
		perRange [][]Tuple
		stats    UpdateStats
	}
	outcomes, err := shard.Run(ctx, shard.Executor{}, d.m.SplitBatch(qs),
		func(ctx context.Context, t shard.BatchTask) (answer, error) {
			tuples, stats, err := d.stores[t.Shard].QueryBatchContext(ctx, t.Ranges)
			return answer{perRange: tuples, stats: stats}, err
		})
	if err != nil {
		return nil, UpdateStats{}, fmt.Errorf("rsse: sharded batch query: %w", err)
	}
	out := make([][]Tuple, len(qs))
	var stats UpdateStats
	for _, o := range outcomes {
		for j, tuples := range o.Res.perRange {
			src := o.Task.Sources[j]
			out[src] = append(out[src], tuples...)
		}
		mergeUpdateStats(&stats, o.Res.stats)
	}
	return out, stats, nil
}

// mergeUpdateStats folds one shard's update-query stats into the total.
func mergeUpdateStats(dst *UpdateStats, s UpdateStats) {
	dst.Indexes += s.Indexes
	dst.Tokens += s.Tokens
	dst.TokenBytes += s.TokenBytes
	dst.Raw += s.Raw
	dst.FalsePositives += s.FalsePositives
}

// Pending sums the buffered, unflushed operations across shards.
func (d *ShardedDynamic) Pending() int {
	n := 0
	for _, s := range d.stores {
		n += s.Pending()
	}
	return n
}

// ActiveIndexes sums the active indexes across shards.
func (d *ShardedDynamic) ActiveIndexes() int {
	n := 0
	for _, s := range d.stores {
		n += s.ActiveIndexes()
	}
	return n
}

// Batches sums the flushed batches across shards.
func (d *ShardedDynamic) Batches() uint64 {
	var n uint64
	for _, s := range d.stores {
		n += s.Batches()
	}
	return n
}

// TotalIndexSize sums the serialized index sizes across shards.
func (d *ShardedDynamic) TotalIndexSize() int {
	n := 0
	for _, s := range d.stores {
		n += s.TotalIndexSize()
	}
	return n
}
