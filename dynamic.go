package rsse

import (
	"rsse/internal/cover"
	"rsse/internal/lsm"
)

// Dynamic is the updatable store of Section 7: updates are buffered into
// batches, every flushed batch becomes an independent static index under
// a fresh key, and batches consolidate hierarchically (an s-ary
// log-structured merge tree, as in Vertica-style bulk loading).
//
// The construction achieves forward privacy — a search token issued
// before an update cannot match data added after it — using only the
// static schemes of this module, with at most O(s·log_s b) active indexes
// after b batches.
//
// A Dynamic store is not safe for concurrent use.
type Dynamic struct {
	inner *lsm.Manager
}

// UpdateStats aggregates the per-epoch costs of one query over a Dynamic
// store.
type UpdateStats = lsm.QueryStats

// DefaultConsolidationStep is the consolidation step s used when 0 is
// passed to NewDynamic: small enough to merge frequently (good under
// deletions), large enough to amortize re-encryption.
const DefaultConsolidationStep = 4

// NewDynamic creates an updatable store for the given scheme and domain.
// consolidationStep is the paper's parameter s (how many sibling indexes
// trigger a merge); pass 0 for the default. Options apply to every
// per-epoch client; per-epoch keys are derived internally.
func NewDynamic(kind Kind, domainBits uint8, consolidationStep int, opts ...Option) (*Dynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	lowered, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := lsm.NewManager(kind, dom, consolidationStep, lowered)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// Insert buffers a tuple insertion for the next batch.
func (d *Dynamic) Insert(id ID, value Value, payload []byte) {
	d.inner.Insert(id, value, payload)
}

// Delete buffers a deletion. value must be the victim's current attribute
// value: the tombstone is indexed under it so matching range queries
// retrieve and cancel the victim.
func (d *Dynamic) Delete(id ID, value Value) {
	d.inner.Delete(id, value)
}

// Modify buffers a value/payload change (a tombstone under the old value
// plus an insertion under the new one).
func (d *Dynamic) Modify(id ID, oldValue, newValue Value, payload []byte) {
	d.inner.Modify(id, oldValue, newValue, payload)
}

// Flush seals the pending batch into a fresh encrypted index and runs any
// due consolidations. Flushing with nothing pending is a no-op.
func (d *Dynamic) Flush() error { return d.inner.Flush() }

// Query runs the range query against every active index, resolves the
// per-id operation history owner-side (newest operation wins, tombstones
// cancel their victims) and returns the live tuples.
func (d *Dynamic) Query(q Range) ([]Tuple, UpdateStats, error) {
	return d.inner.Query(q)
}

// FullConsolidate merges every active index into one and drops
// tombstones — the periodic global rebuild.
func (d *Dynamic) FullConsolidate() error { return d.inner.FullConsolidate() }

// Pending returns the number of buffered, unflushed operations.
func (d *Dynamic) Pending() int { return d.inner.Pending() }

// ActiveIndexes returns how many indexes the server currently holds.
func (d *Dynamic) ActiveIndexes() int { return d.inner.ActiveIndexes() }

// Batches returns how many batches have been flushed so far.
func (d *Dynamic) Batches() uint64 { return d.inner.Batches() }

// TotalIndexSize sums the serialized sizes of all active indexes.
func (d *Dynamic) TotalIndexSize() int { return d.inner.TotalIndexSize() }
