package rsse

import (
	"context"
	"fmt"

	"rsse/internal/cover"
	"rsse/internal/lsm"
	"rsse/internal/prf"
	"rsse/internal/shard"
)

// Dynamic is the updatable store of Section 7: updates are buffered into
// batches, every flushed batch becomes an independent static index under
// a fresh key, and batches consolidate hierarchically (an s-ary
// log-structured merge tree, as in Vertica-style bulk loading).
//
// The construction achieves forward privacy — a search token issued
// before an update cannot match data added after it — using only the
// static schemes of this module, with at most O(s·log_s b) active indexes
// after b batches.
//
// A Dynamic store is not safe for concurrent use.
type Dynamic struct {
	inner *lsm.Manager
}

// UpdateStats aggregates the per-epoch costs of one query over a Dynamic
// store.
type UpdateStats = lsm.QueryStats

// DefaultConsolidationStep is the consolidation step s used when 0 is
// passed to NewDynamic: small enough to merge frequently (good under
// deletions), large enough to amortize re-encryption.
const DefaultConsolidationStep = 4

// NewDynamic creates an updatable store for the given scheme and domain.
// consolidationStep is the paper's parameter s (how many sibling indexes
// trigger a merge); pass 0 for the default. Options apply to every
// per-epoch client; per-epoch keys are derived internally.
func NewDynamic(kind Kind, domainBits uint8, consolidationStep int, opts ...Option) (*Dynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	lowered, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := lsm.NewManager(kind, dom, consolidationStep, lowered)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// newDynamicWithMaster is NewDynamic with the epoch-key master fixed —
// the sharded store derives one master per shard from its cluster key.
func newDynamicWithMaster(kind Kind, dom cover.Domain, consolidationStep int, master prf.Key, opts []Option) (*Dynamic, error) {
	if consolidationStep == 0 {
		consolidationStep = DefaultConsolidationStep
	}
	lowered, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := lsm.NewManagerWithMaster(kind, dom, consolidationStep, master, lowered)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// Insert buffers a tuple insertion for the next batch.
func (d *Dynamic) Insert(id ID, value Value, payload []byte) {
	d.inner.Insert(id, value, payload)
}

// Delete buffers a deletion. value must be the victim's current attribute
// value: the tombstone is indexed under it so matching range queries
// retrieve and cancel the victim.
func (d *Dynamic) Delete(id ID, value Value) {
	d.inner.Delete(id, value)
}

// Modify buffers a value/payload change (a tombstone under the old value
// plus an insertion under the new one).
func (d *Dynamic) Modify(id ID, oldValue, newValue Value, payload []byte) {
	d.inner.Modify(id, oldValue, newValue, payload)
}

// Flush seals the pending batch into a fresh encrypted index and runs any
// due consolidations. Flushing with nothing pending is a no-op.
func (d *Dynamic) Flush() error { return d.inner.Flush() }

// Query runs the range query against every active index, resolves the
// per-id operation history owner-side (newest operation wins, tombstones
// cancel their victims) and returns the live tuples.
func (d *Dynamic) Query(q Range) ([]Tuple, UpdateStats, error) {
	return d.inner.Query(q)
}

// QueryContext is Query with cancellation: the per-epoch fan-out aborts
// when ctx is done.
func (d *Dynamic) QueryContext(ctx context.Context, q Range) ([]Tuple, UpdateStats, error) {
	return d.inner.QueryContext(ctx, q)
}

// QueryBatch answers several ranges in one pass over the active indexes:
// every epoch receives a single batched sub-query with the ranges'
// covers deduplicated, so the LSM's per-epoch fan-out cost is paid once
// per batch instead of once per range. Results are per input range, in
// input order.
func (d *Dynamic) QueryBatch(qs []Range) ([][]Tuple, UpdateStats, error) {
	return d.QueryBatchContext(context.Background(), qs)
}

// QueryBatchContext is QueryBatch with cancellation.
func (d *Dynamic) QueryBatchContext(ctx context.Context, qs []Range) ([][]Tuple, UpdateStats, error) {
	return d.inner.QueryBatchOnContext(ctx, d.inner.LocalEpochs(), qs)
}

// FullConsolidate merges every active index into one and drops
// tombstones — the periodic global rebuild.
func (d *Dynamic) FullConsolidate() error { return d.inner.FullConsolidate() }

// Pending returns the number of buffered, unflushed operations.
func (d *Dynamic) Pending() int { return d.inner.Pending() }

// ActiveIndexes returns how many indexes the server currently holds.
func (d *Dynamic) ActiveIndexes() int { return d.inner.ActiveIndexes() }

// Batches returns how many batches have been flushed so far.
func (d *Dynamic) Batches() uint64 { return d.inner.Batches() }

// TotalIndexSize sums the serialized sizes of all active indexes.
func (d *Dynamic) TotalIndexSize() int { return d.inner.TotalIndexSize() }

// ShardedDynamic range-partitions an updatable store: each shard runs
// its own Dynamic LSM (own epochs, own derived keys), and every update
// routes to the shard owning the tuple's value. A modification whose old
// and new values live on different shards splits into a tombstone on the
// old owner and an insertion on the new one — the cross-shard move is
// two ordinary single-shard updates, so per-shard forward privacy is
// untouched.
//
// Like Dynamic, a ShardedDynamic is not safe for concurrent use; its
// queries still fan out over the shards in parallel internally.
type ShardedDynamic struct {
	m      shard.Map
	stores []*Dynamic
}

// NewShardedDynamic creates a sharded updatable store with the given
// number of equal-width shards. consolidationStep and opts apply to
// every shard's LSM; each shard's epoch keys derive from its own master,
// itself derived from a fresh cluster key.
func NewShardedDynamic(kind Kind, domainBits uint8, shards, consolidationStep int, opts ...Option) (*ShardedDynamic, error) {
	dom, err := cover.NewDomain(domainBits)
	if err != nil {
		return nil, err
	}
	m, err := shard.EqualWidth(dom, shards)
	if err != nil {
		return nil, err
	}
	master, err := prf.NewKey(nil)
	if err != nil {
		return nil, err
	}
	d := &ShardedDynamic{m: m, stores: make([]*Dynamic, m.K())}
	for i := range d.stores {
		shardMaster := prf.DeriveN(master, "cluster/dynamic", uint64(i))
		d.stores[i], err = newDynamicWithMaster(kind, dom, consolidationStep, shardMaster, opts)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Shards returns the number of shards.
func (d *ShardedDynamic) Shards() int { return d.m.K() }

// ShardRange returns the closed value interval shard i owns.
func (d *ShardedDynamic) ShardRange(i int) Range { return d.m.ShardRange(i) }

// ShardOf returns the shard that owns value v.
func (d *ShardedDynamic) ShardOf(v Value) int { return d.m.Owner(v) }

// Insert buffers a tuple insertion on the shard owning value.
func (d *ShardedDynamic) Insert(id ID, value Value, payload []byte) {
	d.stores[d.m.Owner(value)].Insert(id, value, payload)
}

// Delete buffers a deletion on the shard owning the victim's current
// value (the tombstone must land where the insertion lives).
func (d *ShardedDynamic) Delete(id ID, value Value) {
	d.stores[d.m.Owner(value)].Delete(id, value)
}

// Modify buffers a value/payload change. When both values belong to one
// shard this is that shard's ordinary modify; across shards it becomes a
// tombstone on the old owner plus an insertion on the new one.
func (d *ShardedDynamic) Modify(id ID, oldValue, newValue Value, payload []byte) {
	oldShard, newShard := d.m.Owner(oldValue), d.m.Owner(newValue)
	if oldShard == newShard {
		d.stores[oldShard].Modify(id, oldValue, newValue, payload)
		return
	}
	d.stores[oldShard].Delete(id, oldValue)
	d.stores[newShard].Insert(id, newValue, payload)
}

// Flush seals every shard's pending batch. Shards with nothing pending
// are untouched — flushing is per shard, so a hot shard's epochs grow
// independently of a cold one's.
func (d *ShardedDynamic) Flush() error {
	for i, s := range d.stores {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("rsse: flushing shard %d: %w", i, err)
		}
	}
	return nil
}

// FullConsolidate rebuilds every shard into a single index each.
func (d *ShardedDynamic) FullConsolidate() error {
	for i, s := range d.stores {
		if err := s.FullConsolidate(); err != nil {
			return fmt.Errorf("rsse: consolidating shard %d: %w", i, err)
		}
	}
	return nil
}

// Query splits the range at shard boundaries, runs the per-shard LSM
// fan-out queries concurrently through the same scatter-gather engine
// cluster queries use (each shard's stores are independent), and merges
// the live tuples and stats.
func (d *ShardedDynamic) Query(q Range) ([]Tuple, UpdateStats, error) {
	return d.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: cancelling ctx aborts the
// scatter.
func (d *ShardedDynamic) QueryContext(ctx context.Context, q Range) ([]Tuple, UpdateStats, error) {
	if err := d.m.Domain().CheckRange(q.Lo, q.Hi); err != nil {
		return nil, UpdateStats{}, err
	}
	type answer struct {
		tuples []Tuple
		stats  UpdateStats
	}
	outcomes, err := shard.Run(ctx, shard.Executor{}, d.m.Split(q),
		func(ctx context.Context, t shard.Task) (answer, error) {
			tuples, stats, err := d.stores[t.Shard].QueryContext(ctx, t.Range)
			return answer{tuples: tuples, stats: stats}, err
		})
	if err != nil {
		return nil, UpdateStats{}, fmt.Errorf("rsse: sharded query: %w", err)
	}
	var (
		out   []Tuple
		stats UpdateStats
	)
	for _, o := range outcomes {
		out = append(out, o.Res.tuples...)
		mergeUpdateStats(&stats, o.Res.stats)
	}
	return out, stats, nil
}

// QueryBatch answers several ranges across the sharded store: the
// ranges' slices group by owning shard and each shard runs one batched
// LSM sub-query over its slices (covers deduplicated per epoch), all
// shards concurrently. Results are per input range, in input order.
func (d *ShardedDynamic) QueryBatch(qs []Range) ([][]Tuple, UpdateStats, error) {
	return d.QueryBatchContext(context.Background(), qs)
}

// QueryBatchContext is QueryBatch with cancellation.
func (d *ShardedDynamic) QueryBatchContext(ctx context.Context, qs []Range) ([][]Tuple, UpdateStats, error) {
	for _, q := range qs {
		if err := d.m.Domain().CheckRange(q.Lo, q.Hi); err != nil {
			return nil, UpdateStats{}, err
		}
	}
	type answer struct {
		perRange [][]Tuple
		stats    UpdateStats
	}
	outcomes, err := shard.Run(ctx, shard.Executor{}, d.m.SplitBatch(qs),
		func(ctx context.Context, t shard.BatchTask) (answer, error) {
			tuples, stats, err := d.stores[t.Shard].QueryBatchContext(ctx, t.Ranges)
			return answer{perRange: tuples, stats: stats}, err
		})
	if err != nil {
		return nil, UpdateStats{}, fmt.Errorf("rsse: sharded batch query: %w", err)
	}
	out := make([][]Tuple, len(qs))
	var stats UpdateStats
	for _, o := range outcomes {
		for j, tuples := range o.Res.perRange {
			src := o.Task.Sources[j]
			out[src] = append(out[src], tuples...)
		}
		mergeUpdateStats(&stats, o.Res.stats)
	}
	return out, stats, nil
}

// mergeUpdateStats folds one shard's update-query stats into the total.
func mergeUpdateStats(dst *UpdateStats, s UpdateStats) {
	dst.Indexes += s.Indexes
	dst.Tokens += s.Tokens
	dst.TokenBytes += s.TokenBytes
	dst.Raw += s.Raw
	dst.FalsePositives += s.FalsePositives
}

// Pending sums the buffered, unflushed operations across shards.
func (d *ShardedDynamic) Pending() int {
	n := 0
	for _, s := range d.stores {
		n += s.Pending()
	}
	return n
}

// ActiveIndexes sums the active indexes across shards.
func (d *ShardedDynamic) ActiveIndexes() int {
	n := 0
	for _, s := range d.stores {
		n += s.ActiveIndexes()
	}
	return n
}

// Batches sums the flushed batches across shards.
func (d *ShardedDynamic) Batches() uint64 {
	var n uint64
	for _, s := range d.stores {
		n += s.Batches()
	}
	return n
}

// TotalIndexSize sums the serialized index sizes across shards.
func (d *ShardedDynamic) TotalIndexSize() int {
	n := 0
	for _, s := range d.stores {
		n += s.TotalIndexSize()
	}
	return n
}
