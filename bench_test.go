// Repository-level benchmarks: one testing.B entry per table/figure of
// the paper's evaluation, at a laptop-friendly scale. The cmd/rsse-bench
// binary runs the same experiments with full sweeps and paper-style
// output; EXPERIMENTS.md records the comparison against the paper.
//
// Run with: go test -bench=. -benchmem
package rsse_test

import (
	"fmt"
	mrand "math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rsse"
	"rsse/internal/dataset"
)

// Benchmark workload: a near-uniform ("Gowalla-like") and a skewed
// ("USPS-like") dataset, sized to keep the full bench run in minutes.
const (
	benchBits = 16
	benchN    = 10000
	uspsBits  = 14
	uspsN     = 8000
	trapdoorR = 100
	fig8Bits  = 20
)

var (
	benchOnce    sync.Once
	benchGowalla []rsse.Tuple
	benchUSPS    []rsse.Tuple

	clientsMu sync.Mutex
	clients   = map[string]*rsse.Client{}
	indexes   = map[string]*rsse.Index{}
)

func benchSetup() {
	benchOnce.Do(func() {
		benchGowalla = dataset.Uniform(benchN, benchBits, 1)
		m := uint64(1) << uspsBits
		benchUSPS = dataset.BandedZipfPool(uspsN, uspsBits, uspsN/20, 1.3, m/8, m/2, 2)
	})
}

// benchClient returns a cached client+index for (kind, dataset) pairs so
// expensive builds happen once per bench binary run.
func benchClient(b *testing.B, kind rsse.Kind, usps bool) (*rsse.Client, *rsse.Index) {
	b.Helper()
	benchSetup()
	key := fmt.Sprintf("%v/%v", kind, usps)
	clientsMu.Lock()
	defer clientsMu.Unlock()
	if c, ok := clients[key]; ok {
		return c, indexes[key]
	}
	bits := uint8(benchBits)
	tuples := benchGowalla
	if usps {
		bits = uspsBits
		tuples = benchUSPS
	}
	c, err := rsse.NewClient(kind, bits,
		rsse.WithSeed(3), rsse.AllowIntersectingQueries(),
		rsse.WithTSetParams(512, 1.4))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := c.BuildIndex(tuples)
	if err != nil {
		b.Fatal(err)
	}
	clients[key] = c
	indexes[key] = idx
	return c, idx
}

func benchKinds() []rsse.Kind {
	return []rsse.Kind{
		rsse.ConstantBRC, rsse.ConstantURC,
		rsse.LogarithmicBRC, rsse.LogarithmicURC,
		rsse.LogarithmicSRC, rsse.LogarithmicSRCi,
	}
}

// BenchmarkFig5_Build measures index construction (Figure 5(b)); the
// reported index_MB metric is Figure 5(a).
func BenchmarkFig5_Build(b *testing.B) {
	benchSetup()
	for _, kind := range benchKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				c, err := rsse.NewClient(kind, benchBits,
					rsse.WithSeed(4), rsse.WithTSetParams(512, 1.4))
				if err != nil {
					b.Fatal(err)
				}
				idx, err := c.BuildIndex(benchGowalla)
				if err != nil {
					b.Fatal(err)
				}
				size = idx.Size()
			}
			b.ReportMetric(float64(size)/(1<<20), "index_MB")
		})
	}
}

// BenchmarkTable2_Build is the skewed-data construction cost (Table 2).
func BenchmarkTable2_Build(b *testing.B) {
	benchSetup()
	for _, kind := range benchKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				c, err := rsse.NewClient(kind, uspsBits,
					rsse.WithSeed(5), rsse.WithTSetParams(512, 1.4))
				if err != nil {
					b.Fatal(err)
				}
				idx, err := c.BuildIndex(benchUSPS)
				if err != nil {
					b.Fatal(err)
				}
				size = idx.Size()
			}
			b.ReportMetric(float64(size)/(1<<20), "index_MB")
		})
	}
}

// BenchmarkFig6_FalsePositives runs the SRC schemes on the skewed
// workload and reports the average false-positive rate (Figure 6(b)).
func BenchmarkFig6_FalsePositives(b *testing.B) {
	for _, kind := range []rsse.Kind{rsse.LogarithmicSRC, rsse.LogarithmicSRCi} {
		for _, pct := range []float64{10, 50} {
			b.Run(fmt.Sprintf("%v/range=%v%%", kind, pct), func(b *testing.B) {
				c, idx := benchClient(b, kind, true)
				queries := dataset.PercentQueries(64, c.Domain(), pct, 6)
				var fp, raw int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.Query(idx, queries[i%len(queries)])
					if err != nil {
						b.Fatal(err)
					}
					fp += res.Stats.FalsePositives
					raw += res.Stats.Raw
				}
				if raw > 0 {
					b.ReportMetric(float64(fp)/float64(raw), "fp_rate")
				}
			})
		}
	}
}

// BenchmarkFig7_Search measures one full query protocol per op for every
// scheme at two range sizes on the uniform workload (Figure 7(a)).
func BenchmarkFig7_Search(b *testing.B) {
	for _, kind := range benchKinds() {
		for _, pct := range []float64{10, 50} {
			b.Run(fmt.Sprintf("%v/range=%v%%", kind, pct), func(b *testing.B) {
				c, idx := benchClient(b, kind, false)
				queries := dataset.PercentQueries(64, c.Domain(), pct, 7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Query(idx, queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7_SearchUSPS is Figure 7(b): the skewed workload, where
// SRC-i overtakes SRC.
func BenchmarkFig7_SearchUSPS(b *testing.B) {
	for _, kind := range []rsse.Kind{rsse.LogarithmicSRC, rsse.LogarithmicSRCi} {
		b.Run(kind.String(), func(b *testing.B) {
			c, idx := benchClient(b, kind, true)
			queries := dataset.PercentQueries(64, c.Domain(), 25, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Query(idx, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8_Trapdoor measures owner-side token generation and size
// (Figures 8(a) and 8(b)) on a 2^20 domain, dataset-independent.
func BenchmarkFig8_Trapdoor(b *testing.B) {
	for _, kind := range benchKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			c, err := rsse.NewClient(kind, fig8Bits, rsse.WithSeed(9))
			if err != nil {
				b.Fatal(err)
			}
			rnd := mrand.New(mrand.NewSource(10))
			var bytes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := rnd.Uint64() % ((1 << fig8Bits) - trapdoorR)
				_, bb, err := c.TrapdoorCost(rsse.Range{Lo: lo, Hi: lo + trapdoorR - 1})
				if err != nil {
					b.Fatal(err)
				}
				bytes = bb
			}
			b.ReportMetric(float64(bytes), "query_bytes")
		})
	}
}

// BenchmarkUpdates_Flush measures the Section 7 batch pipeline: buffering
// plus flushing one 100-op batch into a fresh epoch, with consolidation.
func BenchmarkUpdates_Flush(b *testing.B) {
	d, err := rsse.NewDynamic(rsse.LogarithmicBRC, benchBits, 4,
		rsse.WithSeed(11), rsse.WithTSetParams(512, 1.4))
	if err != nil {
		b.Fatal(err)
	}
	rnd := mrand.New(mrand.NewSource(12))
	id := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			d.Insert(id, rnd.Uint64()%(1<<benchBits), nil)
			id++
		}
		if err := d.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.ActiveIndexes()), "active_indexes")
}

// BenchmarkOpenIndex is the acceptance benchmark for the disk engine's
// lazy serving path: it serializes a 100k-tuple index once, then
// measures what a server pays to bring it online. The map and sorted
// engines rebuild every record through a Builder (O(index size) with
// per-record copies); the disk engine opens the same bytes in place —
// header parsing plus one sequential checksum pass — whether from a
// heap blob or a memory-mapped file.
func BenchmarkOpenIndex(b *testing.B) {
	const openN = 100000
	tuples := dataset.Uniform(openN, 20, 21)
	c, err := rsse.NewClient(rsse.ConstantBRC, 20, rsse.WithSeed(22))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := c.BuildIndex(tuples)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.idx")
	if err := os.WriteFile(path, blob, 0o600); err != nil {
		b.Fatal(err)
	}
	for _, engine := range []string{"map", "sorted", "disk"} {
		b.Run(engine+"/blob", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(blob)))
			for i := 0; i < b.N; i++ {
				if _, err := rsse.UnmarshalIndexWith(blob, engine); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(engine+"/file", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(blob)))
			for i := 0; i < b.N; i++ {
				x, err := rsse.OpenIndexFile(path, engine)
				if err != nil {
					b.Fatal(err)
				}
				if err := x.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Cluster benchmark state: one 100k-tuple dataset, clusters cached per
// shard count so the expensive builds happen once per bench binary run.
const (
	clusterBenchBits = 20
	clusterBenchN    = 100000
)

var (
	clusterBenchOnce   sync.Once
	clusterBenchTuples []rsse.Tuple
	clustersMu         sync.Mutex
	clusters           = map[int]*rsse.Cluster{}
)

func benchCluster(b *testing.B, shards int) *rsse.Cluster {
	b.Helper()
	clusterBenchOnce.Do(func() {
		clusterBenchTuples = dataset.Uniform(clusterBenchN, clusterBenchBits, 41)
	})
	clustersMu.Lock()
	defer clustersMu.Unlock()
	if c, ok := clusters[shards]; ok {
		return c
	}
	c, err := rsse.BuildCluster(rsse.LogarithmicBRC, clusterBenchBits, shards,
		clusterBenchTuples, rsse.WithShardOptions(rsse.WithSeed(42)))
	if err != nil {
		b.Fatal(err)
	}
	clusters[shards] = c
	return c
}

// BenchmarkClusterQuery sweeps the shard count on a fixed 100k-tuple
// workload. ns/op is the merged-result latency of one scatter-gather
// query over a 10%-of-domain range; tokens/shard is the per-sub-query
// token cost. Latency drops as shards grow for two stacked reasons:
// partition pruning (a query touches only the shards its range
// intersects — see shards/query — and each holds 1/k of the data), and,
// on multi-core hosts, the intersected shards searching in parallel.
func BenchmarkClusterQuery(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCluster(b, shards)
			queries := dataset.PercentQueries(64, c.Domain(), 10, 43)
			var tokens, subQueries int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				tokens += res.Stats.Tokens
				subQueries += len(res.Shards)
			}
			b.StopTimer()
			if subQueries > 0 {
				b.ReportMetric(float64(tokens)/float64(subQueries), "tokens/shard")
			}
			b.ReportMetric(float64(subQueries)/float64(b.N), "shards/query")
		})
	}
}

// BenchmarkClusterQueryParallel is the throughput view of the same
// sweep: many owner goroutines query the cluster at once, so per-shard
// serialization (one mutex per shard client) is the contention point —
// more shards, more parallelism.
func BenchmarkClusterQueryParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCluster(b, shards)
			queries := dataset.PercentQueries(64, c.Domain(), 10, 44)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := c.Query(queries[i%len(queries)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// batchBenchRanges returns 64 heavily overlapping 10%-of-domain windows
// sliding across a hot region — the correlated-burst workload the batch
// pipeline exists for.
func batchBenchRanges() []rsse.Range {
	const (
		m     = uint64(1) << benchBits
		width = m / 10
	)
	out := make([]rsse.Range, 64)
	for i := range out {
		lo := m/8 + uint64(i)*(m/1024)
		out[i] = rsse.Range{Lo: lo, Hi: lo + width - 1}
	}
	return out
}

// BenchmarkBatchQuery is the acceptance benchmark for the batched query
// pipeline: a batch of 64 overlapping ranges executed as a sequential
// per-range loop vs one QueryBatch, against a local index and over a TCP
// loopback connection. One op = all 64 ranges answered. The batch
// sub-benchmarks report dedup_x (cover nodes demanded per unique token
// actually sent) and tokens_sent; sequential sub-benchmarks report
// tokens_sent for comparison. On the remote path the sequential loop
// pays 64 search frames where the batch pays one, searched concurrently
// server-side.
func BenchmarkBatchQuery(b *testing.B) {
	c, idx := benchClient(b, rsse.LogarithmicBRC, false)
	ranges := batchBenchRanges()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() { _ = rsse.Serve(l, idx) }()
	remote, err := rsse.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()

	b.Run("local/sequential", func(b *testing.B) {
		var tokens int
		for i := 0; i < b.N; i++ {
			tokens = 0
			for _, q := range ranges {
				res, err := c.Query(idx, q)
				if err != nil {
					b.Fatal(err)
				}
				tokens += res.Stats.Tokens
			}
		}
		b.ReportMetric(float64(tokens), "tokens_sent")
	})
	b.Run("local/batch", func(b *testing.B) {
		var stats rsse.BatchStats
		for i := 0; i < b.N; i++ {
			br, err := c.QueryBatch(idx, ranges)
			if err != nil {
				b.Fatal(err)
			}
			stats = br.Stats
		}
		b.ReportMetric(stats.DedupRatio(), "dedup_x")
		b.ReportMetric(float64(stats.UniqueTokens), "tokens_sent")
	})
	b.Run("remote/sequential", func(b *testing.B) {
		var tokens int
		for i := 0; i < b.N; i++ {
			tokens = 0
			for _, q := range ranges {
				res, err := c.QueryRemote(remote, q)
				if err != nil {
					b.Fatal(err)
				}
				tokens += res.Stats.Tokens
			}
		}
		b.ReportMetric(float64(tokens), "tokens_sent")
	})
	b.Run("remote/batch", func(b *testing.B) {
		var stats rsse.BatchStats
		for i := 0; i < b.N; i++ {
			br, err := c.QueryBatchRemote(remote, ranges)
			if err != nil {
				b.Fatal(err)
			}
			stats = br.Stats
		}
		b.ReportMetric(stats.DedupRatio(), "dedup_x")
		b.ReportMetric(float64(stats.UniqueTokens), "tokens_sent")
	})
}

// BenchmarkQuadratic_Build exercises the naive baseline at its natural
// (tiny) scale for completeness.
func BenchmarkQuadratic_Build(b *testing.B) {
	tuples := dataset.Uniform(200, 6, 13)
	var size int
	for i := 0; i < b.N; i++ {
		c, err := rsse.NewClient(rsse.Quadratic, 6, rsse.WithSeed(14))
		if err != nil {
			b.Fatal(err)
		}
		idx, err := c.BuildIndex(tuples)
		if err != nil {
			b.Fatal(err)
		}
		size = idx.Size()
	}
	b.ReportMetric(float64(size)/(1<<20), "index_MB")
}
