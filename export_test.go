package rsse

import "rsse/internal/storage"

// Test-only crash hooks: recovery tests simulate SIGKILL by dropping a
// durable store's WAL file descriptor without syncing or flushing —
// on-disk state stays exactly as a crash would leave it, and the WAL's
// advisory lock is released so the same test process can reopen the
// directory.

// Crash abandons a durable Dynamic as a kill would.
func Crash(d *Dynamic) { d.inner.Abandon() }

// CrashSharded abandons every shard of a durable ShardedDynamic.
func CrashSharded(d *ShardedDynamic) {
	for _, s := range d.stores {
		s.inner.Abandon()
	}
}

// WithStorageEngine injects a concrete storage engine instead of a
// registered name — the chaos suite uses it to slide a fault-injecting
// wrapper (internal/fault.Engine) under a served index without adding a
// production option for it.
func WithStorageEngine(e storage.Engine) Option {
	return func(c *config) error {
		c.engine = e
		return nil
	}
}
