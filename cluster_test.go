package rsse_test

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rsse"
	"rsse/internal/dataset"
)

// clusterRanges generates the differential-test query mix over a domain
// partitioned by bounds: fully random ranges, ranges forced to span a
// shard boundary, degenerate ranges inside a single shard, single-value
// ranges, and the full domain.
func clusterRanges(n int, size uint64, c *rsse.Cluster, seed int64) []rsse.Range {
	rnd := mrand.New(mrand.NewSource(seed))
	out := make([]rsse.Range, 0, n)
	for len(out) < n {
		switch len(out) % 4 {
		case 0: // fully random
			lo := rnd.Uint64() % size
			out = append(out, rsse.Range{Lo: lo, Hi: lo + rnd.Uint64()%(size-lo)})
		case 1: // spans at least one shard boundary (when the cluster has one)
			if c.Shards() == 1 {
				out = append(out, rsse.Range{Lo: 0, Hi: size - 1})
				continue
			}
			b := c.ShardRange(1 + rnd.Intn(c.Shards()-1)).Lo
			lo := rnd.Uint64() % b
			hi := b + rnd.Uint64()%(size-b)
			out = append(out, rsse.Range{Lo: lo, Hi: hi})
		case 2: // degenerate: inside one shard
			sr := c.ShardRange(rnd.Intn(c.Shards()))
			w := sr.Size()
			lo := sr.Lo + rnd.Uint64()%w
			out = append(out, rsse.Range{Lo: lo, Hi: lo + rnd.Uint64()%(sr.Hi-lo+1)})
		case 3: // single value
			v := rnd.Uint64() % size
			out = append(out, rsse.Range{Lo: v, Hi: v})
		}
	}
	out[0] = rsse.Range{Lo: 0, Hi: size - 1} // always include the full domain
	return out
}

// TestClusterDifferential is the acceptance test: for every scheme kind
// and k ∈ {2, 4}, a k-shard cluster must return exactly the matches of a
// single-index baseline over 100+ randomized ranges, including
// boundary-spanning and degenerate single-shard ones.
func TestClusterDifferential(t *testing.T) {
	for _, kind := range rsse.Kinds() {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/k=%d", kind, k), func(t *testing.T) {
				t.Parallel()
				bits := uint8(12)
				n := 300
				if kind == rsse.Quadratic {
					bits, n = 8, 120 // keep the O(n m^2) baseline tractable
				}
				tuples := genTuples(n, bits, int64(10*int(kind)+k))
				shardOpts := []rsse.Option{rsse.WithSeed(1)}
				baseOpts := []rsse.Option{rsse.WithSeed(2)}
				if kind == rsse.ConstantBRC || kind == rsse.ConstantURC {
					// Randomized ranges intersect; lift the schemes' guard
					// identically on both sides.
					shardOpts = append(shardOpts, rsse.AllowIntersectingQueries())
					baseOpts = append(baseOpts, rsse.AllowIntersectingQueries())
				}
				cluster, err := rsse.BuildCluster(kind, bits, k, tuples,
					rsse.WithShardOptions(shardOpts...))
				if err != nil {
					t.Fatal(err)
				}
				if cluster.Shards() != k {
					t.Fatalf("Shards = %d, want %d", cluster.Shards(), k)
				}
				baseline, err := rsse.NewClient(kind, bits, baseOpts...)
				if err != nil {
					t.Fatal(err)
				}
				baseIdx, err := baseline.BuildIndex(tuples)
				if err != nil {
					t.Fatal(err)
				}
				queries := clusterRanges(110, uint64(1)<<bits, cluster, int64(k))
				for _, q := range queries {
					want, err := baseline.Query(baseIdx, q)
					if err != nil {
						t.Fatalf("baseline %v: %v", q, err)
					}
					got, err := cluster.Query(q)
					if err != nil {
						t.Fatalf("cluster %v: %v", q, err)
					}
					if !equal(sorted(got.Matches), sorted(want.Matches)) {
						t.Fatalf("%v: cluster %v != baseline %v", q, sorted(got.Matches), sorted(want.Matches))
					}
					if !equal(sorted(got.Matches), oracle(tuples, q)) {
						t.Fatalf("%v: cluster disagrees with plaintext oracle", q)
					}
					if got.Stats.Matches != len(got.Matches) {
						t.Fatalf("%v: merged stats count %d != %d matches", q, got.Stats.Matches, len(got.Matches))
					}
					if len(got.Shards) == 0 || len(got.Shards) > k {
						t.Fatalf("%v: %d per-shard stats", q, len(got.Shards))
					}
				}
			})
		}
	}
}

// TestClusterShardIndependence checks the leakage-scope claim mechanics:
// shards are separate indexes under distinct derived keys, and a range
// inside one shard touches exactly one shard.
func TestClusterShardIndependence(t *testing.T) {
	tuples := genTuples(200, 10, 31)
	cluster, err := rsse.BuildCluster(rsse.LogarithmicBRC, 10, 4, tuples,
		rsse.WithShardOptions(rsse.WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	stats := cluster.Stats()
	if len(stats) != 4 {
		t.Fatalf("Stats len %d", len(stats))
	}
	total := 0
	for i, s := range stats {
		if s.Shard != i || s.Range != cluster.ShardRange(i) {
			t.Fatalf("stat %d: %+v", i, s)
		}
		total += s.Stats.N
	}
	if total != len(tuples) {
		t.Fatalf("shard tuple counts sum to %d, want %d", total, len(tuples))
	}
	// One-shard query → exactly one per-shard entry, on the owner.
	sr := cluster.ShardRange(2)
	res, err := cluster.Query(rsse.Range{Lo: sr.Lo, Hi: sr.Lo})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 1 || res.Shards[0].Shard != 2 {
		t.Fatalf("single-shard query touched %+v", res.Shards)
	}
	if cluster.ShardOf(sr.Lo) != 2 {
		t.Fatalf("ShardOf(%d) = %d", sr.Lo, cluster.ShardOf(sr.Lo))
	}
	// A shard client cannot decrypt another shard's tuples: keys differ.
	k0 := cluster.ShardIndex(0)
	other, err := rsse.NewClient(rsse.LogarithmicBRC, 10,
		rsse.WithMasterKey(cluster.MasterKey()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Query(k0, rsse.Range{Lo: 0, Hi: 10}); err == nil {
		// The cluster master key must not be a shard key directly. A
		// query under it may error or return garbage, but must not
		// silently succeed with correct plaintext matches.
		t.Log("cluster-master query succeeded (acceptable only if matches are wrong)")
	}
}

func TestClusterQuantileSplit(t *testing.T) {
	// Zipf-skewed data: quantile splitting must spread tuples while
	// staying differentially correct.
	tuples := dataset.ZipfPool(4000, 14, 200, 1.2, 5)
	cluster, err := rsse.BuildCluster(rsse.LogarithmicSRCi, 14, 4, tuples,
		rsse.WithQuantileSplit(), rsse.WithShardOptions(rsse.WithSeed(3)))
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Shards() < 2 {
		t.Fatalf("quantile split collapsed to %d shards", cluster.Shards())
	}
	for _, s := range cluster.Stats() {
		if s.Stats.N > len(tuples)*2/cluster.Shards() {
			t.Fatalf("shard %d holds %d of %d tuples after quantile split", s.Shard, s.Stats.N, len(tuples))
		}
	}
	baseline, err := rsse.NewClient(rsse.LogarithmicSRCi, 14, rsse.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	baseIdx, err := baseline.BuildIndex(tuples)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range clusterRanges(40, 1<<14, cluster, 6) {
		want, err := baseline.Query(baseIdx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cluster.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(sorted(got.Matches), sorted(want.Matches)) {
			t.Fatalf("%v: quantile cluster diverged", q)
		}
	}
}

// serveCluster registers the cluster's shards (by manifest name) into
// registries spread across addrs and serves each on a loopback listener.
// Returns the manifest with per-shard addresses filled in round-robin.
func serveCluster(t *testing.T, cluster *rsse.Cluster, base string, servers int) rsse.ClusterManifest {
	t.Helper()
	man := cluster.Manifest(base)
	regs := make([]*rsse.Registry, servers)
	addrs := make([]string, servers)
	for i := range regs {
		regs[i] = rsse.NewRegistry()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		srv := rsse.NewServer(regs[i])
		go srv.Serve(l)
		t.Cleanup(func() {
			srv.Shutdown(context.Background())
			l.Close()
		})
	}
	for i := range man.Shards {
		s := i % servers
		if err := regs[s].Register(man.Shards[i].Name, cluster.ShardIndex(i)); err != nil {
			t.Fatal(err)
		}
		man.Shards[i].Addr = addrs[s]
	}
	return man
}

// TestClusterRemoteScatterGather serves a built cluster's shards across
// two real TCP servers and checks that a dialed cluster (static
// shard→addr table) returns baseline-identical results.
func TestClusterRemoteScatterGather(t *testing.T) {
	tuples := genTuples(400, 12, 41)
	built, err := rsse.BuildCluster(rsse.LogarithmicSRCi, 12, 4, tuples,
		rsse.WithShardOptions(rsse.WithSeed(5)))
	if err != nil {
		t.Fatal(err)
	}
	man := serveCluster(t, built, "users", 2)

	dialed, err := rsse.DialCluster("tcp", "", man, built.MasterKey(),
		rsse.WithShardOptions(rsse.WithSeed(6)))
	if err != nil {
		t.Fatal(err)
	}
	defer dialed.Close()
	for _, q := range clusterRanges(30, 1<<12, built, 7) {
		want := oracle(tuples, q)
		res, err := dialed.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if !equal(sorted(res.Matches), want) {
			t.Fatalf("%v: remote cluster diverged", q)
		}
	}
	// Payload fetch routes across shards.
	tup, err := dialed.FetchTuple(tuples[7].ID)
	if err != nil {
		t.Fatal(err)
	}
	if tup.Value != tuples[7].Value {
		t.Fatalf("FetchTuple value %d, want %d", tup.Value, tuples[7].Value)
	}
	// A missing default address for an address-less shard must fail fast.
	bare := built.Manifest("users") // no addrs
	if _, err := rsse.DialCluster("tcp", "", bare, built.MasterKey()); err == nil {
		t.Fatal("dial without addresses accepted")
	}
}

// TestClusterPartialResults kills one shard of a served cluster and
// checks both policies: fail-fast rejects the query, partial returns the
// reachable slices and reports the dead shard's error.
func TestClusterPartialResults(t *testing.T) {
	tuples := genTuples(300, 12, 51)
	built, err := rsse.BuildCluster(rsse.LogarithmicBRC, 12, 4, tuples,
		rsse.WithShardOptions(rsse.WithSeed(8)))
	if err != nil {
		t.Fatal(err)
	}
	man := serveCluster(t, built, "t", 1)

	strict, err := rsse.DialCluster("tcp", "", man, built.MasterKey())
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()

	full := rsse.Range{Lo: 0, Hi: (1 << 12) - 1}
	if _, err := strict.Query(full); err != nil {
		t.Fatalf("healthy strict query: %v", err)
	}

	t.Run("dead address", func(t *testing.T) {
		// A shard pinned to an unreachable address fails at dial time.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddr := l.Addr().String()
		l.Close()
		man3 := man
		man3.Shards = append([]rsse.ClusterShardInfo(nil), man.Shards...)
		man3.Shards[2].Addr = deadAddr

		if _, err := rsse.DialCluster("tcp", "", man3, built.MasterKey()); err == nil {
			t.Fatal("dialing a dead shard address must fail at dial time")
		}
	})

	// An unknown served name: dialing succeeds (name resolution is lazy),
	// the sub-query fails at first use.
	t.Run("deregistered name", func(t *testing.T) {
		man4 := man
		man4.Shards = append([]rsse.ClusterShardInfo(nil), man.Shards...)
		man4.Shards[2].Name = "no-such-index"

		strict2, err := rsse.DialCluster("tcp", "", man4, built.MasterKey())
		if err != nil {
			t.Fatal(err)
		}
		defer strict2.Close()
		if _, err := strict2.Query(full); err == nil {
			t.Fatal("strict query over a dead shard succeeded")
		}

		part2, err := rsse.DialCluster("tcp", "", man4, built.MasterKey(),
			rsse.WithPartialResults())
		if err != nil {
			t.Fatal(err)
		}
		defer part2.Close()
		res, err := part2.Query(full)
		if err != nil {
			t.Fatalf("partial query: %v", err)
		}
		deadRange := built.ShardRange(2)
		var live []rsse.ID
		for _, tup := range tuples {
			if !deadRange.Contains(tup.Value) {
				live = append(live, tup.ID)
			}
		}
		if !equal(sorted(res.Matches), sorted(live)) {
			t.Fatalf("partial result wrong: %d matches, want %d", len(res.Matches), len(live))
		}
		failed := 0
		for _, s := range res.Shards {
			if s.Err != nil {
				if s.Shard != 2 {
					t.Fatalf("wrong shard failed: %+v", s)
				}
				failed++
			}
		}
		if failed != 1 {
			t.Fatalf("%d shards failed, want 1", failed)
		}
	})
}

func TestClusterContextCancel(t *testing.T) {
	tuples := genTuples(100, 10, 61)
	cluster, err := rsse.BuildCluster(rsse.LogarithmicBRC, 10, 2, tuples)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cluster.QueryContext(ctx, rsse.Range{Lo: 0, Hi: 1023}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query error = %v", err)
	}
}

func TestClusterConcurrentQueries(t *testing.T) {
	tuples := genTuples(500, 12, 71)
	cluster, err := rsse.BuildCluster(rsse.LogarithmicURC, 12, 4, tuples,
		rsse.WithShardOptions(rsse.WithSeed(9)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := mrand.New(mrand.NewSource(int64(g)))
			for i := 0; i < 20; i++ {
				lo := rnd.Uint64() % (1 << 12)
				hi := lo + rnd.Uint64()%((1<<12)-lo)
				q := rsse.Range{Lo: lo, Hi: hi}
				res, err := cluster.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if !equal(sorted(res.Matches), oracle(tuples, q)) {
					errs <- fmt.Errorf("goroutine %d: %v wrong matches", g, q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClusterPersistReopen writes a built cluster's shards to disk under
// the manifest's conventional names, reopens the cluster from the files,
// and checks differential equality — the owner restart path.
func TestClusterPersistReopen(t *testing.T) {
	tuples := genTuples(250, 12, 81)
	built, err := rsse.BuildCluster(rsse.LogarithmicSRC, 12, 3, tuples,
		rsse.WithShardOptions(rsse.WithSeed(10)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man := built.Manifest("demo")
	for i := 0; i < built.Shards(); i++ {
		blob, err := built.ShardIndex(i).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, man.Shards[i].Name+".idx"), blob, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := man.WriteFile(filepath.Join(dir, "demo.cluster.json")); err != nil {
		t.Fatal(err)
	}

	reread, err := rsse.OpenCluster(man, built.MasterKey(),
		func(i int, info rsse.ClusterShardInfo) (*rsse.Index, error) {
			return rsse.OpenIndexFile(filepath.Join(dir, info.Name+".idx"), "disk")
		})
	if err != nil {
		t.Fatal(err)
	}
	defer reread.Close()
	for _, q := range clusterRanges(30, 1<<12, reread, 11) {
		res, err := reread.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if !equal(sorted(res.Matches), oracle(tuples, q)) {
			t.Fatalf("%v: reopened cluster diverged", q)
		}
	}
	if reread.ShardIndex(0).Stats().Engine != "disk" {
		t.Fatalf("reopened engine %q", reread.ShardIndex(0).Stats().Engine)
	}
}

func TestClusterValidation(t *testing.T) {
	tuples := []rsse.Tuple{{ID: 1, Value: 1}, {ID: 1, Value: 2}}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 2, tuples); !errors.Is(err, rsse.ErrDuplicateID) {
		t.Fatalf("duplicate ids across shards: %v", err)
	}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 2,
		[]rsse.Tuple{{ID: 1, Value: 1 << 20}}); !errors.Is(err, rsse.ErrValueOutsideDomain) {
		t.Fatal("out-of-domain value accepted")
	}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 1000, nil); err == nil {
		t.Fatal("k > domain accepted")
	}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 2, nil,
		rsse.WithClusterKey([]byte("short"))); err == nil {
		t.Fatal("short cluster key accepted")
	}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 2, nil,
		rsse.WithShardOptions(rsse.WithMasterKey(make([]byte, 32)))); err == nil {
		t.Fatal("WithMasterKey smuggled through shard options")
	}
	if _, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 2, nil,
		rsse.WithClusterWorkers(-1)); err == nil {
		t.Fatal("negative worker bound accepted")
	}
	// k=1 degenerates to a single index and still answers queries.
	one, err := rsse.BuildCluster(rsse.LogarithmicBRC, 8, 1, genTuples(50, 8, 91))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Query(rsse.Range{Lo: 0, Hi: 255}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterKeyDeterminism: the same cluster key re-creates clients
// that can query shard indexes built earlier.
func TestClusterKeyDeterminism(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 3)
	}
	tuples := genTuples(200, 10, 92)
	built, err := rsse.BuildCluster(rsse.LogarithmicBRC, 10, 3, tuples,
		rsse.WithClusterKey(key), rsse.WithShardOptions(rsse.WithSeed(12)))
	if err != nil {
		t.Fatal(err)
	}
	man := built.Manifest("d")
	reopened, err := rsse.OpenCluster(man, key,
		func(i int, info rsse.ClusterShardInfo) (*rsse.Index, error) {
			blob, err := built.ShardIndex(i).MarshalBinary()
			if err != nil {
				return nil, err
			}
			return rsse.UnmarshalIndex(blob)
		})
	if err != nil {
		t.Fatal(err)
	}
	q := rsse.Range{Lo: 100, Hi: 900}
	res, err := reopened.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sorted(res.Matches), oracle(tuples, q)) {
		t.Fatal("re-keyed cluster cannot read its own shards")
	}
	// A wrong key must not produce correct results.
	bad := make([]byte, 32)
	wrongKeyCluster, err := rsse.OpenCluster(man, bad,
		func(i int, info rsse.ClusterShardInfo) (*rsse.Index, error) {
			blob, err := built.ShardIndex(i).MarshalBinary()
			if err != nil {
				return nil, err
			}
			return rsse.UnmarshalIndex(blob)
		})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := wrongKeyCluster.Query(q); err == nil && equal(sorted(res.Matches), oracle(tuples, q)) {
		t.Fatal("wrong cluster key still decrypts")
	}
}
