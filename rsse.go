package rsse

import (
	"fmt"
	"io"
	"os"

	"rsse/internal/core"
	"rsse/internal/cover"
	"rsse/internal/storage"
)

// Core data types, shared with the scheme implementations.
type (
	// Tuple is one data item: a unique ID, its query-attribute Value, and
	// an optional application Payload stored encrypted on the server.
	Tuple = core.Tuple
	// Range is a closed query interval [Lo, Hi].
	Range = core.Range
	// ID is a tuple identifier (visible to the server — access pattern).
	ID = core.ID
	// Value is a query-attribute value.
	Value = core.Value
	// Kind selects one of the paper's schemes.
	Kind = core.Kind
	// Result is a query outcome: Matches (exact), Raw (as returned by the
	// server, possibly with false positives) and Stats.
	Result = core.Result
	// QueryStats carries per-query cost and leakage accounting.
	QueryStats = core.QueryStats
	// BatchResult is a batched query outcome: one Result per input range
	// plus batch-level dedup and cost accounting.
	BatchResult = core.BatchResult
	// BatchStats carries the batch-level accounting of one QueryBatch:
	// cover-node demand vs unique tokens sent (DedupRatio), rounds, bytes
	// and the wall-clock split.
	BatchStats = core.BatchStats
	// Trapdoor is a single round's encrypted query message. Advanced use
	// only (benchmarks, protocol inspection); normal callers use Query.
	Trapdoor = core.Trapdoor
	// Index is the server-side encrypted state.
	Index = core.Index
	// Domain is the query-attribute domain {0..2^Bits-1}.
	Domain = cover.Domain
)

// The paper's schemes, in presentation order (Sections 4-6).
const (
	// Quadratic: one keyword per possible subrange. Maximal security,
	// O(n m^2) storage; tiny domains only (Section 4).
	Quadratic = core.Quadratic
	// ConstantBRC: DPRF-based, O(n) storage, best range cover trapdoors.
	// Non-intersecting queries only (Section 5).
	ConstantBRC = core.ConstantBRC
	// ConstantURC: ConstantBRC with position-hiding uniform range covers.
	ConstantURC = core.ConstantURC
	// LogarithmicBRC: dyadic path keywords, O(n log m) storage, exact
	// results (Section 6.1).
	LogarithmicBRC = core.LogarithmicBRC
	// LogarithmicURC: LogarithmicBRC with uniform range covers.
	LogarithmicURC = core.LogarithmicURC
	// LogarithmicSRC: TDAG single-keyword queries; false positives under
	// skew (Section 6.2).
	LogarithmicSRC = core.LogarithmicSRC
	// LogarithmicSRCi: interactive double index; the paper's best
	// security/efficiency trade-off (Section 6.3).
	LogarithmicSRCi = core.LogarithmicSRCi
)

// Kinds lists every scheme.
func Kinds() []Kind { return core.Kinds() }

// KindByName parses a scheme name as printed by Kind.String, e.g.
// "Logarithmic-SRC-i".
func KindByName(name string) (Kind, error) { return core.KindByName(name) }

// Errors re-exported from the scheme layer.
var (
	// ErrIntersectingQuery: the Constant schemes reject queries that
	// intersect earlier ones (an inherent DPRF limitation, Section 5).
	ErrIntersectingQuery = core.ErrIntersectingQuery
	// ErrDuplicateID: BuildIndex requires unique tuple ids.
	ErrDuplicateID = core.ErrDuplicateID
	// ErrValueOutsideDomain: a tuple value or query bound exceeds 2^bits.
	ErrValueOutsideDomain = core.ErrValueOutsideDomain
	// ErrKindMismatch: an index was queried by a client of another scheme.
	ErrKindMismatch = core.ErrKindMismatch
	// ErrDomainTooLarge: the Quadratic scheme refuses intractable domains.
	ErrDomainTooLarge = core.ErrDomainTooLarge
)

// IndexStats is the operational profile of an index: scheme, logical
// sizes, storage engine, and where the bytes live (heap vs mapped file).
// Obtained from Index.Stats and Registry.Stats.
type IndexStats = core.IndexStats

// IndexMeta is an index's public metadata (scheme, domain, tuple count)
// — exactly the L1 leakage plus protocol bookkeeping.
type IndexMeta = core.IndexMeta

// UnmarshalIndex reconstructs an Index serialized with
// Index.MarshalBinary — how a server restores persisted state. The blob
// contains no key material; only the matching client can query it. Both
// the current v2 segment-container format and v1 blobs written before it
// load transparently.
func UnmarshalIndex(data []byte) (*Index, error) { return core.UnmarshalIndex(data) }

// UnmarshalIndexWith reconstructs a serialized Index onto a named
// storage engine — "map" (hash tables, the default), "sorted" (the
// read-optimized flat layout) or "disk" (serves v2 blobs in place with
// zero per-record copies; the returned index then aliases data, which
// must stay valid and unmodified while the index is in use). The engine
// is a local representation choice and never affects the wire format.
func UnmarshalIndexWith(data []byte, engine string) (*Index, error) {
	eng, err := storage.ByName(engine)
	if err != nil {
		return nil, err
	}
	return core.UnmarshalIndexWith(data, eng)
}

// OpenIndexFile memory-maps (or, where mmap is unavailable, reads) an
// index file and reconstructs it onto the named storage engine. With
// "disk" and a v2 file this is the lazy-serving path: open cost is
// near-constant regardless of index size — section headers plus one
// sequential checksum pass — and queries answer straight from the
// mapping, so resident memory stays near zero until data pages in.
// Close the returned index to release the mapping when done.
func OpenIndexFile(path, engine string) (*Index, error) {
	eng, err := storage.ByName(engine)
	if err != nil {
		return nil, err
	}
	return core.OpenIndexFile(path, eng)
}

// PeekIndexFile reads an index file's public metadata from its fixed
// header without loading the body — cheap enough to run over a whole
// directory before deciding what to serve.
func PeekIndexFile(path string) (IndexMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return IndexMeta{}, err
	}
	defer f.Close()
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return IndexMeta{}, fmt.Errorf("%s: %w", path, core.ErrCorruptIndex)
	}
	meta, err := core.PeekMeta(hdr)
	if err != nil {
		return IndexMeta{}, fmt.Errorf("%s: %w", path, err)
	}
	return meta, nil
}

// StorageEngines lists the available storage engine names for
// UnmarshalIndexWith, OpenIndexFile and WithStorage.
func StorageEngines() []string {
	out := make([]string, 0, 3)
	for _, e := range storage.Engines() {
		out = append(out, e.Name())
	}
	return out
}

// NewDomain returns the domain {0..2^bits-1}; bits at most 62.
func NewDomain(bits uint8) (Domain, error) { return cover.NewDomain(bits) }

// FitDomain returns the smallest domain containing maxValue — convenient
// when the attribute's maximum is known but not a power of two (the paper
// scales arbitrary discrete domains this way).
func FitDomain(maxValue Value) Domain { return cover.FitDomain(maxValue) }
