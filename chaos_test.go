package rsse_test

// The chaos-differential suite: every scheme kind, queried through
// fault-injected connections (and a fault-injected storage backend on
// the server), must return results byte-identical to a fault-free
// oracle — or fail with a typed, attributable error. Fault schedules
// are deterministic from a seed (internal/fault), so a failure here
// replays exactly. The transport-level kill-point sweep and the
// mid-stream batch death test live in internal/transport; these tests
// drive the same machinery end to end through the public API.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"rsse"
	"rsse/internal/fault"
	"rsse/internal/storage"
	"rsse/internal/wal"
)

// chaosRetry is the retry policy the chaos tests dial with: enough
// attempts to ride out the scheduled faults, a per-attempt deadline
// that converts a black-holed connection into a retryable timeout, and
// a seeded jitter source so the whole run is deterministic.
func chaosRetry() rsse.RetryPolicy {
	return rsse.RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		// Must be long enough that no legitimate op (a Constant-scheme
		// batch over delay-injected storage) ever hits it, and every
		// scheduled black hole costs one full OpTimeout of wall clock.
		OpTimeout: 2 * time.Second,
		Seed:      11,
	}
}

// chaosPlan is the scheduled part of the fault schedule every kind runs
// under: the first connection's write side dies mid-request, the
// second's read side truncates a response mid-frame, the third black-
// holes its reads (recovered only by the per-attempt deadline). On top,
// seeded background noise closes ~2% of reads/writes and delays 20%.
func chaosPlan(seed int64) fault.Plan {
	return fault.Plan{
		Seed: seed,
		Rules: []fault.Rule{
			{Conn: 0, Side: fault.Write, Action: fault.Close, AfterCalls: 3},
			{Conn: 1, Side: fault.Read, Action: fault.Truncate, AtByte: 200},
			{Conn: 2, Side: fault.Read, Action: fault.BlackHole, AfterCalls: 2},
		},
		CloseRate:  0.02,
		DelayRate:  0.2,
		MaxDelayMS: 1,
	}
}

// chaosQueries is the query mix: the full domain plus random ranges.
func chaosQueries(n int, size uint64, seed int64) []rsse.Range {
	rnd := mrand.New(mrand.NewSource(seed))
	out := []rsse.Range{{Lo: 0, Hi: size - 1}}
	for len(out) < n {
		lo := rnd.Uint64() % size
		out = append(out, rsse.Range{Lo: lo, Hi: lo + rnd.Uint64()%(size-lo)})
	}
	return out
}

// serveIndex registers one index under name and serves it on loopback.
func serveIndex(t *testing.T, name string, index *rsse.Index) string {
	t.Helper()
	reg := rsse.NewRegistry()
	if err := reg.Register(name, index); err != nil {
		t.Fatal(err)
	}
	srv := rsse.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		l.Close()
	})
	return l.Addr().String()
}

// TestChaosDifferentialRemote: for every scheme kind, a resilient
// remote client under a seeded fault schedule (flaky connections AND a
// delay-injecting storage backend behind the served index) must return
// results element-for-element identical — raw server ids included — to
// an identically-keyed local client querying the same index directly.
func TestChaosDifferentialRemote(t *testing.T) {
	for _, kind := range rsse.Kinds() {
		t.Run(fmt.Sprintf("%v", kind), func(t *testing.T) {
			t.Parallel()
			bits := uint8(10)
			if kind == rsse.Quadratic {
				bits = 6 // keep the naive baseline tractable
			}
			key := bytes.Repeat([]byte{9}, 32)
			opts := func(seed int64) []rsse.Option {
				return []rsse.Option{
					rsse.WithSeed(seed),
					rsse.WithMasterKey(key),
					rsse.AllowIntersectingQueries(),
				}
			}
			tuples := genTuples(200, bits, 7)

			// The served index sits on a fault-wrapped storage engine:
			// deterministic lookup delays widen the in-flight window the
			// connection faults strike into, without changing any byte of
			// any response.
			eng := fault.Engine{Inner: storage.Map{}, Plan: fault.BackendPlan{
				Seed: 1, DelayEvery: 64, DelayMS: 1,
			}}
			builder, err := rsse.NewClient(kind, bits,
				append(opts(8), rsse.WithStorageEngine(eng))...)
			if err != nil {
				t.Fatal(err)
			}
			index, err := builder.BuildIndex(tuples)
			if err != nil {
				t.Fatal(err)
			}
			addr := serveIndex(t, "chaos", index)

			inj := fault.New(chaosPlan(40 + int64(kind)))
			remote, err := rsse.DialIndexWith("tcp", addr, "chaos",
				rsse.WithConnWrapper(inj.Wrap),
				rsse.WithRetry(chaosRetry()))
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()

			// Oracle and chaos clients share the seed: the cover-token
			// shuffle draws from it, and element-wise Raw comparison needs
			// both sides to emit tokens in the same order. They run the
			// same query sequence, so their rngs stay in lockstep.
			localClient, err := rsse.NewClient(kind, bits, opts(3)...)
			if err != nil {
				t.Fatal(err)
			}
			remoteClient, err := rsse.NewClient(kind, bits, opts(3)...)
			if err != nil {
				t.Fatal(err)
			}

			queries := chaosQueries(24, uint64(1)<<bits, 13)
			for _, q := range queries {
				want, err := localClient.Query(index, q)
				if err != nil {
					t.Fatalf("oracle %v: %v", q, err)
				}
				got, err := remoteClient.QueryRemote(remote, q)
				if err != nil {
					t.Fatalf("chaos remote %v: %v", q, err)
				}
				if !equal(got.Raw, want.Raw) {
					t.Fatalf("%v: raw ids diverged under faults: %d vs %d", q, len(got.Raw), len(want.Raw))
				}
				if !equal(sorted(got.Matches), oracle(tuples, q)) {
					t.Fatalf("%v: matches diverged from plaintext oracle", q)
				}
			}

			// Batched queries ride the same retry machinery (including the
			// streamed large-batch path, which reassembles per attempt).
			batch := queries[:8]
			wantB, err := localClient.QueryBatch(index, batch)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := remoteClient.QueryBatchRemote(remote, batch)
			if err != nil {
				t.Fatalf("chaos batch: %v", err)
			}
			for i := range batch {
				if !equal(gotB.Results[i].Raw, wantB.Results[i].Raw) {
					t.Fatalf("batch range %d diverged under faults", i)
				}
			}

			// Point fetches too.
			for _, id := range []rsse.ID{1, 50, 200} {
				tup, err := remoteClient.FetchTupleRemote(remote, id)
				if err != nil {
					t.Fatalf("fetch %d: %v", id, err)
				}
				if tup.ID != id || tup.Value != tuples[id-1].Value {
					t.Fatalf("fetch %d: got %+v", id, tup)
				}
			}

			// The schedule must actually have bitten: at least one
			// connection was killed and replaced, or this test proved
			// nothing about resilience.
			st := inj.Stats()
			if st.Closes+st.Truncations+st.BlackHoles == 0 {
				t.Fatalf("fault plan never fired: %+v", st)
			}
			if st.Conns < 2 {
				t.Fatalf("no redial happened (%d conns); faults were not exercised", st.Conns)
			}
		})
	}
}

// TestChaosDifferentialCluster: a dialed cluster under per-connection
// fault injection plus shard retry must stay element-for-element
// identical to a fault-free dialed cluster over the same served shards
// — and report every result complete.
func TestChaosDifferentialCluster(t *testing.T) {
	for _, kind := range rsse.Kinds() {
		t.Run(fmt.Sprintf("%v", kind), func(t *testing.T) {
			t.Parallel()
			bits := uint8(12)
			n := 240
			if kind == rsse.Quadratic {
				bits, n = 8, 120
			}
			shardOpts := func(seed int64) rsse.ClusterOption {
				return rsse.WithShardOptions(rsse.WithSeed(seed), rsse.AllowIntersectingQueries())
			}
			tuples := genTuples(n, bits, 10+int64(kind))
			built, err := rsse.BuildCluster(kind, bits, 3, tuples, shardOpts(5))
			if err != nil {
				t.Fatal(err)
			}
			man := serveCluster(t, built, "cx", 2)

			clean, err := rsse.DialCluster("tcp", "", man, built.MasterKey(), shardOpts(6))
			if err != nil {
				t.Fatal(err)
			}
			defer clean.Close()

			inj := fault.New(chaosPlan(60 + int64(kind)))
			chaos, err := rsse.DialCluster("tcp", "", man, built.MasterKey(), shardOpts(7),
				rsse.WithShardConnWrapper(inj.Wrap),
				rsse.WithShardRetry(chaosRetry()))
			if err != nil {
				t.Fatal(err)
			}
			defer chaos.Close()

			for _, q := range clusterRanges(12, uint64(1)<<bits, built, 17+int64(kind)) {
				want, err := clean.Query(q)
				if err != nil {
					t.Fatalf("clean %v: %v", q, err)
				}
				got, err := chaos.Query(q)
				if err != nil {
					t.Fatalf("chaos %v: %v", q, err)
				}
				if !got.Complete() {
					t.Fatalf("%v: chaos result incomplete: %v", q, got.PartialErr())
				}
				if !equal(sorted(got.Matches), sorted(want.Matches)) {
					t.Fatalf("%v: chaos cluster diverged", q)
				}
				if !equal(sorted(got.Matches), oracle(tuples, q)) {
					t.Fatalf("%v: chaos cluster disagrees with plaintext oracle", q)
				}
			}

			// One batched scatter through the same fault schedule.
			batch := clusterRanges(6, uint64(1)<<bits, built, 23)
			wantB, err := clean.QueryBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := chaos.QueryBatch(batch)
			if err != nil {
				t.Fatalf("chaos batch: %v", err)
			}
			if err := gotB.PartialErr(); err != nil {
				t.Fatalf("chaos batch incomplete: %v", err)
			}
			for i := range batch {
				if !equal(sorted(gotB.Results[i].Matches), sorted(wantB.Results[i].Matches)) {
					t.Fatalf("batch range %d diverged under faults", i)
				}
			}

			if st := inj.Stats(); st.Conns < 2 {
				t.Fatalf("no redial happened (%d conns); faults were not exercised", st.Conns)
			}
		})
	}
}

// TestClusterDeadShardDegradation walks the degradation ladder: with
// WithShardRetry a permanently dead shard no longer fails DialCluster
// (dialing is lazy); under WithPartialResults its queries degrade to
// typed partial results carrying both ErrPartialResult and ErrConnDead;
// ranges that avoid the dead shard stay complete; and only a range
// served exclusively by the dead shard fails outright.
func TestClusterDeadShardDegradation(t *testing.T) {
	tuples := genTuples(300, 12, 51)
	built, err := rsse.BuildCluster(rsse.LogarithmicBRC, 12, 4, tuples,
		rsse.WithShardOptions(rsse.WithSeed(8)))
	if err != nil {
		t.Fatal(err)
	}
	man := serveCluster(t, built, "dd", 1)

	// Point shard 2 at an address nothing listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()
	man.Shards = append([]rsse.ClusterShardInfo(nil), man.Shards...)
	man.Shards[2].Addr = deadAddr

	retry := rsse.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 9}

	// Without retry, the dead address fails eagerly at dial time
	// (TestClusterPartialResults pins that). With retry, dialing is lazy
	// and must succeed.
	dialed, err := rsse.DialCluster("tcp", "", man, built.MasterKey(),
		rsse.WithShardOptions(rsse.WithSeed(10)),
		rsse.WithShardRetry(retry),
		rsse.WithPartialResults())
	if err != nil {
		t.Fatalf("lazy dial with a dead shard failed: %v", err)
	}
	defer dialed.Close()

	deadRange := built.ShardRange(2)

	// Full domain: the query succeeds, covers every live slice, and the
	// gap is attributable — typed as both partial and conn-dead.
	full := rsse.Range{Lo: 0, Hi: (1 << 12) - 1}
	res, err := dialed.Query(full)
	if err != nil {
		t.Fatalf("partial query failed outright: %v", err)
	}
	var live []rsse.ID
	for _, tup := range tuples {
		if !deadRange.Contains(tup.Value) {
			live = append(live, tup.ID)
		}
	}
	if !equal(sorted(res.Matches), sorted(live)) {
		t.Fatalf("partial result wrong: %d matches, want %d", len(res.Matches), len(live))
	}
	pe := res.PartialErr()
	if !errors.Is(pe, rsse.ErrPartialResult) {
		t.Fatalf("PartialErr = %v, want ErrPartialResult", pe)
	}
	if !errors.Is(pe, rsse.ErrConnDead) {
		t.Fatalf("PartialErr = %v, want it to wrap ErrConnDead", pe)
	}
	if res.Complete() {
		t.Fatal("result with a dead shard claims completeness")
	}

	// A range that avoids the dead shard is complete and exact.
	liveRange := built.ShardRange(0)
	res, err = dialed.Query(liveRange)
	if err != nil {
		t.Fatalf("live-shard query: %v", err)
	}
	if !res.Complete() {
		t.Fatalf("live-shard query reported partial: %v", res.PartialErr())
	}
	if !equal(sorted(res.Matches), oracle(tuples, liveRange)) {
		t.Fatal("live-shard query diverged")
	}

	// A range only the dead shard serves: every intersected shard failed,
	// so the query itself fails, typed.
	if _, err := dialed.Query(rsse.Range{Lo: deadRange.Lo, Hi: deadRange.Lo}); err == nil {
		t.Fatal("query served only by the dead shard succeeded")
	} else if !errors.Is(err, rsse.ErrConnDead) {
		t.Fatalf("dead-only query error = %v, want ErrConnDead", err)
	}

	// Batched scatter over mixed ranges degrades the same way.
	bres, err := dialed.QueryBatch([]rsse.Range{full, liveRange})
	if err != nil {
		t.Fatalf("partial batch failed outright: %v", err)
	}
	if bpe := bres.PartialErr(); !errors.Is(bpe, rsse.ErrPartialResult) || !errors.Is(bpe, rsse.ErrConnDead) {
		t.Fatalf("batch PartialErr = %v", bpe)
	}
	if !equal(sorted(bres.Results[1].Matches), oracle(tuples, liveRange)) {
		t.Fatal("live range inside a partial batch diverged")
	}
}

// TestDynamicChaosAtMostOnce drives remote updates into a durable
// Dynamic store over connections a seeded fault plan keeps killing.
// The client NEVER re-sends a failed update — an errored ack leaves the
// update's fate unknown, and retrying it could apply it twice. The WAL
// is then the ground truth: every acknowledged insert must appear
// exactly once, NO insert may appear twice (acked or not), and the
// sequence chain must verify — wal.Replay rejects a broken chain as
// corruption.
func TestDynamicChaosAtMostOnce(t *testing.T) {
	dir := t.TempDir()
	const bits = 10
	d, err := rsse.OpenDynamic(dir, rsse.LogarithmicBRC, bits, 4, dynOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	reg := rsse.NewRegistry()
	if err := reg.RegisterWritable(rsse.DefaultDynamicName, d); err != nil {
		t.Fatal(err)
	}
	srv := rsse.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		l.Close()
	})

	// Every connection's write side dies after its 7th write call, so
	// the run is forced through several mid-update connection deaths.
	inj := fault.New(fault.Plan{Seed: 77, Rules: []fault.Rule{
		{Conn: -1, Side: fault.Write, Action: fault.Close, AfterCalls: 7},
	}})
	dial := func() (*rsse.RemoteDynamic, error) {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		return rsse.NewRemoteDynamic(inj.Wrap(nc), rsse.DefaultDynamicName), nil
	}
	remote, err := dial()
	if err != nil {
		t.Fatal(err)
	}

	const total = 40
	var acked []uint64
	reconnects := 0
	for id := uint64(1); id <= total; id++ {
		if err := remote.Insert(id, id%(1<<bits), []byte(fmt.Sprintf("p-%d", id))); err != nil {
			// The insert's fate is unknown: the request may have reached
			// the WAL before the connection died, or not. At-most-once
			// means we must NOT re-send it — reconnect and move on to the
			// next unique update.
			reconnects++
			remote.Close()
			if remote, err = dial(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		acked = append(acked, id)
	}
	remote.Close()
	if reconnects == 0 {
		t.Fatal("fault plan never killed a connection; nothing was exercised")
	}
	if len(acked) == 0 {
		t.Fatal("no insert was ever acknowledged")
	}

	// Ground truth, before any flush: replay the WAL. Replay itself
	// verifies checksums and the sequence chain (a break is ErrCorruptWAL,
	// which replayWALFile fails on).
	recs := replayWALFile(t, filepath.Join(dir, "wal.log"))
	count := make(map[uint64]int)
	for _, r := range recs {
		if r.Kind != wal.Insert {
			t.Fatalf("unexpected WAL record kind %v", r.Kind)
		}
		count[r.ID]++
	}
	for _, id := range acked {
		if count[id] != 1 {
			t.Fatalf("acknowledged insert %d appears %d times in the WAL, want exactly 1", id, count[id])
		}
	}
	for id, n := range count {
		if n != 1 {
			t.Fatalf("insert %d logged %d times — an update applied twice", id, n)
		}
		if id < 1 || id > total {
			t.Fatalf("WAL holds an id %d the client never sent", id)
		}
	}

	// Read back over a clean connection: the live tuples are exactly the
	// WAL's inserts — acked ones all present, un-acked ones present only
	// if their frame made it into the log before the cut.
	clean, err := rsse.DialDynamic("tcp", l.Addr().String(), rsse.DefaultDynamicName)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if err := clean.Flush(); err != nil {
		t.Fatal(err)
	}
	tuples, err := clean.Query(rsse.Range{Lo: 0, Hi: (1 << bits) - 1})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]bool, len(tuples))
	for _, tup := range tuples {
		got[tup.ID] = true
	}
	if len(got) != len(count) {
		t.Fatalf("%d live tuples, WAL logged %d distinct inserts", len(got), len(count))
	}
	for id := range count {
		if !got[id] {
			t.Fatalf("logged insert %d missing from the store", id)
		}
	}
	if st := inj.Stats(); st.Closes == 0 {
		t.Fatalf("injector reports no closes: %+v", st)
	}
}
