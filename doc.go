// Package rsse implements Range Searchable Symmetric Encryption: practical
// private range search over outsourced data, reproducing "Practical
// Private Range Search Revisited" (Demertzis, Papadopoulos, Papapetrou,
// Deligiannakis, Garofalakis — SIGMOD 2016).
//
// # Model
//
// A data owner holds tuples (id, value, payload) with values from a
// discrete domain {0..2^bits-1}. The owner encrypts the tuples and an
// index and hands both to an untrusted, honest-but-curious server. Later
// the owner issues range queries [lo, hi]; the server answers them over
// the encrypted index without learning the data distribution, the query
// endpoints, or anything beyond each scheme's precisely defined leakage.
//
// # Schemes
//
// The paper's seven schemes trade storage, query size, search time and
// leakage against each other (its Table 1):
//
//	Scheme             Storage      Query     Search     False positives
//	Quadratic          O(n m^2)     O(1)      O(r)       none
//	Constant-BRC/URC   O(n)         O(log R)  O(R + r)   none
//	Logarithmic-BRC/URC O(n log m)  O(log R)  O(log R+r) none
//	Logarithmic-SRC    O(n log m)   O(1)      O(n)       up to O(n)
//	Logarithmic-SRC-i  O(n log m)   O(1)      O(R + r)   O(R + r)
//
// where n is the dataset size, m the domain size, R the query range size
// and r the result size. Higher rows are generally more secure;
// Logarithmic-SRC-i offers the paper's preferred trade-off.
//
// # Quick start
//
//	client, err := rsse.NewClient(rsse.LogarithmicSRCi, 20) // 2^20 domain
//	if err != nil { ... }
//	index, err := client.BuildIndex([]rsse.Tuple{
//		{ID: 1, Value: 1000, Payload: []byte("alice")},
//		{ID: 2, Value: 2000, Payload: []byte("bob")},
//	})
//	if err != nil { ... }
//	// Ship index to the server; keep client (it holds the keys).
//	res, err := client.Query(index, rsse.Range{Lo: 500, Hi: 1500})
//	// res.Matches == []rsse.ID{1}
//
// For batched updates with forward privacy (Section 7 of the paper), see
// Dynamic — and OpenDynamic for the durable, crash-recoverable variant.
// The underlying single-keyword SSE construction is pluggable via
// WithSSE; experiments use the TSet construction with the paper's
// parameters.
//
// # Storage engines and serving from disk
//
// The physical layout of an index's records is a server-local choice,
// independent of the wire format and the leakage profile: "map" (hash
// tables, the default), "sorted" (flat arrays with a radix directory,
// read-optimized) or "disk" (checksummed sealed segments answered by
// binary search over the raw bytes). Select with WithStorage at build
// time or UnmarshalIndexWith at load time.
//
// Serialized indexes (Index.MarshalBinary, wire format v2; v1 blobs
// load transparently) are containers of in-place-readable segments:
// OpenIndexFile(path, "disk") memory-maps a file and serves it with
// near-constant open cost and near-zero resident memory —
//
//	index, err := rsse.OpenIndexFile("users.idx", "disk")
//	defer index.Close()
//
// and Registry.RegisterLazy defers even that until the first query, so
// one process can front a directory holding far more index bytes than
// RAM. Index.Stats and Registry.Stats report per-index sizing for
// operators.
//
// # Sharded clusters
//
// Past one machine's capacity, a Cluster range-partitions the domain
// into k contiguous shards — each an independent index under an
// independently derived key, so a compromised shard key exposes only
// its slice of the domain. Queries split at shard boundaries, run
// concurrently, and merge into one result:
//
//	cluster, err := rsse.BuildCluster(rsse.LogarithmicSRCi, 20, 4, tuples)
//	res, err := cluster.Query(rsse.Range{Lo: 500, Hi: 1500})
//
// BuildCluster accepts WithQuantileSplit (skew-aware shard boundaries),
// WithPartialResults (degrade instead of failing when a shard is down),
// WithClusterWorkers, WithClusterKey and WithShardOptions. The cluster
// round-trips through a key-free ClusterManifest: OpenCluster reopens
// shards from files, DialCluster connects to remotely served shards via
// a static shard→address table, and ShardedDynamic routes forward-
// private updates to the shard owning each value. QueryContext cancels
// an in-flight scatter; ClusterResult reports per-shard cost, leakage
// and errors alongside the merged Result.
//
// # Durable dynamic indexes
//
// A Dynamic created with NewDynamic lives in memory; OpenDynamic roots
// the same forward-private LSM in a directory and makes it a
// restartable service. Every Insert/Delete/Modify is appended to a
// checksummed write-ahead log before it is buffered; Flush seals the
// pending batch into an epoch file and commits via an atomic manifest
// rename; reopening the directory — after a clean Close or a SIGKILL —
// recovers the exact pre-crash state, replaying the WAL tail and
// resuming consolidation:
//
//	d, err := rsse.OpenDynamic("./dyn", rsse.LogarithmicBRC, 16, 0)
//	err = d.Insert(42, 1200, []byte("alice")) // durable once nil is returned
//	err = d.Flush()
//
// WithSyncEvery(n) tunes the WAL fsync policy: n=1 (default) makes
// every acknowledged update durable; larger n raises ingestion
// throughput by orders of magnitude at the cost of the last n-1
// acknowledged updates in a crash. A Modify is one atomic WAL record,
// and OpenShardedDynamic persists per-shard directories whose
// cross-shard modifications are ordered (tombstone fsynced before the
// insertion is logged), so recovery never resurrects a moved value.
//
// Remote updates: Registry.RegisterWritable serves a writable store,
// rsse.DialDynamic mutates it from another process, and rsse-server
// -writable / rsse-owner put|del|modify|flush|get speak the same
// protocol from the command line. The serving process holds the
// store's keys — it is an owner-side durable write gateway, not the
// untrusted query server; see ARCHITECTURE.md for the trust model and
// the per-epoch leakage note.
//
// # Batched queries
//
// Correlated bursts of range queries share most of their dyadic cover
// nodes. QueryBatch plans all covers together, deduplicates the shared
// nodes into one multi-trapdoor per round, and demultiplexes the shared
// response into one Result per range — identical results to a
// sequential loop, a fraction of the tokens, frames and searches:
//
//	br, err := client.QueryBatch(index, []rsse.Range{{0, 99}, {50, 199}})
//	// br.Results[0], br.Results[1]; br.Stats.DedupRatio()
//
// The batch rides one wire frame per round against a remote index
// (Client.QueryBatchRemote), one frame per intersected shard across a
// cluster (Cluster.QueryBatch), one batched sub-query per LSM epoch
// (Dynamic.QueryBatch, ShardedDynamic.QueryBatch), and through the
// cache (CachedClient.QueryBatch answers covered ranges locally and
// batches the misses). WithBatchWorkers bounds the owner-side parallel
// false-positive fetches. The server sees only the deduplicated,
// jointly permuted token union plus the batch size — strictly less than
// the equivalent sequential queries reveal.
//
// # Context-aware variants
//
// Every query layer has a context form — Client.QueryContext,
// Client.QueryBatchContext, Client.QueryRemoteContext,
// Client.QueryBatchRemoteContext, Cluster.QueryContext,
// Cluster.QueryBatchContext, Dynamic.QueryContext,
// Dynamic.QueryBatchContext, ShardedDynamic.QueryContext,
// ShardedDynamic.QueryBatchContext, CachedClient.QueryContext and
// CachedClient.QueryBatchContext — so cancellation and deadlines work
// uniformly: an expired context aborts in-flight round trips
// immediately and the late responses are discarded without corrupting
// the connection. The plain methods delegate to their context variants
// with context.Background().
package rsse
