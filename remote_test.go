package rsse_test

import (
	"context"
	mrand "math/rand"
	"net"
	"sort"
	"sync"
	"testing"

	"rsse"
)

func remoteTestData(t *testing.T, kind rsse.Kind, seed int64) (*rsse.Client, *rsse.Index, []rsse.Tuple) {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(seed)
	}
	client, err := rsse.NewClient(kind, 10, rsse.WithSeed(seed), rsse.WithMasterKey(key))
	if err != nil {
		t.Fatal(err)
	}
	rnd := mrand.New(mrand.NewSource(seed))
	tuples := make([]rsse.Tuple, 300)
	for i := range tuples {
		tuples[i] = rsse.Tuple{ID: uint64(i + 1), Value: rnd.Uint64() % 1024}
	}
	index, err := client.BuildIndex(tuples)
	if err != nil {
		t.Fatal(err)
	}
	return client, index, tuples
}

func matchesOf(tuples []rsse.Tuple, q rsse.Range) []rsse.ID {
	var out []rsse.ID
	for _, tu := range tuples {
		if q.Contains(tu.Value) {
			out = append(out, tu.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestRemoteIndexConcurrentUse is the regression test for the old
// frame-corruption footgun: many goroutines share ONE RemoteIndex. With
// request multiplexing this must be safe; run with -race.
func TestRemoteIndexConcurrentUse(t *testing.T) {
	_, index, tuples := remoteTestData(t, rsse.LogarithmicBRC, 21)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = rsse.Serve(l, index) }()

	remote, err := rsse.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	q := rsse.Range{Lo: 128, Hi: 768}
	want := matchesOf(tuples, q)
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Clients are not concurrent-safe; one per goroutine with the
			// same master key. The RemoteIndex is the shared object here.
			key := make([]byte, 32)
			for i := range key {
				key[i] = 21
			}
			cc, err := rsse.NewClient(rsse.LogarithmicBRC, 10, rsse.WithMasterKey(key))
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			for rep := 0; rep < 5; rep++ {
				res, err := cc.QueryRemote(remote, q)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got := append([]rsse.ID(nil), res.Matches...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Errorf("goroutine %d: %d matches, want %d", g, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("goroutine %d: result corrupted", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMultiIndexPublicAPI serves two named indexes from one process via
// the public Registry/Server/DialIndex surface and shuts down cleanly.
func TestMultiIndexPublicAPI(t *testing.T) {
	cA, indexA, tuplesA := remoteTestData(t, rsse.LogarithmicBRC, 31)
	cB, indexB, tuplesB := remoteTestData(t, rsse.LogarithmicSRC, 32)

	reg := rsse.NewRegistry()
	if err := reg.Register("nil", nil); err == nil {
		t.Fatal("nil index registered")
	}
	if err := reg.Register("alpha", indexA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("beta", indexB); err != nil {
		t.Fatal(err)
	}
	srv := rsse.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	q := rsse.Range{Lo: 100, Hi: 900}
	var wg sync.WaitGroup
	check := func(name string, c *rsse.Client, tuples []rsse.Tuple) {
		defer wg.Done()
		remote, err := rsse.DialIndex("tcp", l.Addr().String(), name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		defer remote.Close()
		served, err := remote.ServedIndexes()
		if err != nil || len(served) != 2 {
			t.Errorf("%s: served = %v, %v", name, served, err)
			return
		}
		res, err := c.QueryRemote(remote, q)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		if len(res.Matches) != len(matchesOf(tuples, q)) {
			t.Errorf("%s: %d matches, want %d", name, len(res.Matches), len(matchesOf(tuples, q)))
		}
	}
	wg.Add(2)
	go check("alpha", cA, tuplesA)
	go check("beta", cB, tuplesB)
	wg.Wait()

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
