// Command rsse-gen generates the synthetic workloads the benchmarks use
// (Gowalla-like near-uniform, USPS-like skewed, Zipf, uniform, hotspot,
// adversarial, clustered) as CSV on stdout: id,value per line. Useful
// for feeding external tools or inspecting what the harness measures.
//
// Usage:
//
//	rsse-gen -kind gowalla -n 100000 -seed 1 > gowalla.csv
//	rsse-gen -kind usps -n 50000 > usps.csv
//	rsse-gen -kind zipf -n 10000 -bits 20 -distinct 500 -s 1.3
//	rsse-gen -kind uniform -n 10000 -bits 16
//	rsse-gen -kind hotspot -n 10000 -bits 16 -hot-frac 0.05 -hot-weight 0.9
//	rsse-gen -kind adversarial -n 10000 -bits 16
//	rsse-gen -kind clustered -n 10000 -bits 16 -clusters 8 -spread 100
//
// The zipf, uniform, hotspot and adversarial kinds are the shared
// distribution families of internal/dataset: rsse-load's workload specs
// position their query ranges by drawing from the same families, so a
// dataset and the query stream hammering it can agree on where the mass
// is (or, for adversarial, on which dyadic boundaries to straddle).
//
// -dist selects the value distribution directly (overriding -kind):
// `-dist zipf` is the skewed workload for sharded-cluster experiments —
// equal-width shards go heavily imbalanced under it, which
// `rsse-owner shard build -split quantile` corrects:
//
//	rsse-gen -dist zipf -n 100000 -bits 20 -s 1.2 > skewed.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rsse/internal/core"
	"rsse/internal/dataset"
	"rsse/internal/obs"
)

func main() {
	var (
		kind      = flag.String("kind", "gowalla", "gowalla|usps|zipf|uniform|hotspot|adversarial|clustered")
		dist      = flag.String("dist", "", "value distribution; overrides -kind when set. `-dist zipf` generates the skewed workload that exposes shard imbalance (equal-width shards concentrate Zipf mass on few shards; rsse-owner shard build -split quantile rebalances it)")
		n         = flag.Int("n", 10000, "number of tuples")
		bits      = flag.Uint("bits", 20, "domain exponent (zipf/uniform/hotspot/adversarial/clustered)")
		distinct  = flag.Int("distinct", 0, "distinct values (zipf; default n/20)")
		skew      = flag.Float64("s", 1.3, "zipf exponent (>1)")
		hotFrac   = flag.Float64("hot-frac", 0.05, "hotspot: fraction of the domain the hot band covers")
		hotWeight = flag.Float64("hot-weight", 0.9, "hotspot: fraction of tuples landing in the hot band")
		clusters  = flag.Int("clusters", 8, "cluster count (clustered)")
		spread    = flag.Uint64("spread", 100, "cluster spread (clustered)")
		seed      = flag.Int64("seed", 1, "generator seed")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("rsse-gen", obs.Info())
		return
	}

	if *dist != "" {
		*kind = *dist
	}
	var tuples []core.Tuple
	switch *kind {
	case "gowalla":
		tuples = dataset.GowallaLike(*n, *seed)
	case "usps":
		tuples = dataset.USPSLike(*n, *seed)
	case "zipf":
		d := *distinct
		if d == 0 {
			d = *n / 20
		}
		tuples = dataset.ZipfPool(*n, uint8(*bits), d, *skew, *seed)
	case "uniform":
		tuples = dataset.Uniform(*n, uint8(*bits), *seed)
	case "hotspot":
		var err error
		tuples, err = dataset.Hotspot(*n, uint8(*bits), *hotFrac, *hotWeight, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsse-gen:", err)
			os.Exit(2)
		}
	case "adversarial":
		var err error
		tuples, err = dataset.Adversarial(*n, uint8(*bits), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsse-gen:", err)
			os.Exit(2)
		}
	case "clustered":
		tuples = dataset.Clustered(*n, uint8(*bits), *clusters, *spread, *seed)
	default:
		fmt.Fprintf(os.Stderr, "rsse-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "id,value")
	for _, t := range tuples {
		fmt.Fprintf(w, "%d,%d\n", t.ID, t.Value)
	}
	fmt.Fprintf(os.Stderr, "rsse-gen: %d tuples, %.1f%% distinct\n",
		len(tuples), 100*dataset.DistinctFraction(tuples))
}
