// Command rsse-bench regenerates the paper's evaluation (Section 8 and
// Appendix A): every table and figure, printed as aligned text series.
//
// Usage:
//
//	rsse-bench [-scale small|medium|paper] [experiment...]
//
// Experiments: fig5, table2, fig6, fig7, fig8, table1, ablation, updates,
// batch, durable, perf, all (default all). The "paper" scale mirrors the
// paper's dataset sizes and can take hours; "small" (default) completes
// in minutes. The -batch flag is shorthand for the batch experiment
// alone: the sequential-vs-batched multi-range pipeline with its token
// dedup ratios. The -updates flag is shorthand for the durable-updates
// benchmark alone: sustained insert throughput under WAL fsync policies
// WithSyncEvery ∈ {1, 64, 1024}, plus recovery time vs WAL length.
//
// The perf experiment runs the repository's standard query-path
// workloads (the internal/core BenchmarkQueryPath setups); -json writes
// its machine-readable report — the format of the BENCH_*.json perf
// trajectory at the repository root — to a file and implies the perf
// experiment. -cpuprofile and -memprofile write pprof profiles of
// whatever experiments run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rsse/internal/benchutil"
	"rsse/internal/obs"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small|medium|paper")
	batchOnly := flag.Bool("batch", false, "run only the batched-query pipeline experiment")
	updatesOnly := flag.Bool("updates", false, "run only the durable-updates benchmark (WAL fsync sweep + recovery time)")
	jsonPath := flag.String("json", "", "write the perf experiment's machine-readable report to this file (implies the perf experiment)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("rsse-bench", obs.Info())
		return
	}
	scale, err := benchutil.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			exitOn(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			exitOn(err)
			runtime.GC()
			exitOn(pprof.WriteHeapProfile(f))
			exitOn(f.Close())
		}()
	}

	wanted := flag.Args()
	if *batchOnly {
		wanted = append(wanted, "batch")
	}
	if *updatesOnly {
		wanted = append(wanted, "durable")
	}
	if *jsonPath != "" {
		// -json alone runs just the perf workloads; combined with
		// explicit experiments it adds them.
		wanted = append(wanted, "perf")
	}
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	known := []string{"fig5", "table2", "fig6", "fig7", "fig8", "table1",
		"ablation", "batch", "updates", "perf", "durable", "all"}
	isKnown := map[string]bool{}
	for _, k := range known {
		isKnown[k] = true
	}
	want := map[string]bool{}
	for _, w := range wanted {
		if !isKnown[w] {
			fmt.Fprintf(os.Stderr, "rsse-bench: unknown experiment %q\navailable experiments: %s\n",
				w, strings.Join(known, ", "))
			os.Exit(2)
		}
		want[w] = true
	}
	runAll := want["all"]
	out := os.Stdout

	fmt.Fprintf(out, "rsse-bench — scale %q\n", scale.Name)
	start := time.Now()

	if runAll || want["fig5"] {
		sizeExp, timeExp, err := benchutil.Fig5(scale)
		exitOn(err)
		sizeExp.Print(out)
		timeExp.Print(out)
	}
	if runAll || want["table2"] {
		t2, err := benchutil.Table2(scale)
		exitOn(err)
		t2.Print(out)
	}
	if runAll || want["fig6"] {
		a, b, err := benchutil.Fig6(scale)
		exitOn(err)
		a.Print(out)
		b.Print(out)
	}
	if runAll || want["fig7"] {
		a, b, err := benchutil.Fig7(scale)
		exitOn(err)
		a.Print(out)
		b.Print(out)
	}
	if runAll || want["fig8"] {
		sizeExp, timeExp, err := benchutil.Fig8(scale)
		exitOn(err)
		sizeExp.Print(out)
		timeExp.Print(out)
	}
	if runAll || want["table1"] {
		rows, err := benchutil.Table1(scale)
		exitOn(err)
		benchutil.PrintTable1(rows, out)
	}
	if runAll || want["ablation"] {
		exp, err := benchutil.AblationSRC(scale)
		exitOn(err)
		exp.Print(out)
	}
	if runAll || want["batch"] {
		exp, err := benchutil.BatchPipeline(scale)
		exitOn(err)
		exp.Print(out)
	}
	if runAll || want["updates"] {
		active, summaries, err := benchutil.Updates(scale)
		exitOn(err)
		active.Print(out)
		fmt.Fprintf(out, "\nSection 7 — end-of-stream summary\n")
		for _, s := range summaries {
			fmt.Fprintf(out, "  s=%d: %d active indexes, flush+consolidate %.2fs, full-range query %.1fms (%d tokens), total %.1fMB\n",
				s.Step, s.ActiveIndexes, s.FlushTotal.Seconds(),
				float64(s.QueryTime.Microseconds())/1000, s.QueryTokens,
				float64(s.TotalSize)/(1<<20))
		}
	}
	if runAll || want["perf"] {
		report, err := benchutil.QueryPerf()
		exitOn(err)
		report.Print(out)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			exitOn(err)
			exitOn(report.WriteJSON(f))
			exitOn(f.Close())
			fmt.Fprintf(out, "perf report written to %s\n", *jsonPath)
		}
	}
	if runAll || want["durable"] {
		throughput, recovery, err := benchutil.DurableUpdates(scale)
		exitOn(err)
		fmt.Fprintf(out, "\nDurable updates — sustained insert throughput by WAL fsync policy\n")
		for _, r := range throughput {
			fmt.Fprintf(out, "  sync every %4d: %6.0f inserts/s  (%d inserts in %.2fs, WAL %.1f MB)\n",
				r.SyncEvery, r.PerSecond, r.Inserts, r.Elapsed.Seconds(), float64(r.WALBytes)/(1<<20))
		}
		fmt.Fprintf(out, "\nDurable updates — recovery time vs WAL length\n")
		for _, r := range recovery {
			fmt.Fprintf(out, "  %6d pending records (%.1f MB WAL): reopened in %.1fms\n",
				r.WALRecords, float64(r.WALBytes)/(1<<20), float64(r.Recovery.Microseconds())/1000)
		}
	}
	fmt.Fprintf(out, "\ncompleted in %.1fs\n", time.Since(start).Seconds())
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsse-bench:", err)
		os.Exit(1)
	}
}
