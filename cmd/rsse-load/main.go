// Command rsse-load is the sustained-throughput harness: a multi-client
// open-loop driver that hammers a live rsse-server with a declarative
// workload spec and reports latency histograms, sustained QPS and
// leakage counters in a machine-readable BENCH report.
//
// Run the bundled uniform and zipf specs against a server (the scheme,
// domain and index name are discovered from the server's metadata; only
// the owner key is local):
//
//	rsse-load -addr 127.0.0.1:7070 -keyfile table.key \
//	    -workloads uniform,zipf -json BENCH_7.json
//
// Run a spec file (see internal/workload.Spec for the format):
//
//	rsse-load -addr 127.0.0.1:7070 -keyfile table.key -spec soak.json
//
// Shrink every phase for a smoke run:
//
//	rsse-load ... -scale 0.2
//
// Measure the bounded-dispatch before/after: point -compare-addr at a
// second server running the legacy goroutine-per-request path
// (rsse-server -dispatch spawn); the zipf workload is driven against
// both and the report gains a dispatch_comparison block:
//
//	rsse-load -addr 127.0.0.1:7070 -compare-addr 127.0.0.1:7071 \
//	    -keyfile table.key -workloads zipf -json BENCH_7.json
//
// Gate CI against a committed baseline (non-zero exit if sustained QPS
// drops or steady p99 rises by more than -gate):
//
//	rsse-load ... -json /tmp/now.json -baseline BENCH_7.json -gate 0.20
//
// Drive a sharded cluster instead of a single index by passing the
// cluster manifest; each session is its own cluster dial (batched ops
// run range-at-a-time — the cluster path has no batch protocol):
//
//	rsse-load -addr 127.0.0.1:7070 -manifest users.cluster.json \
//	    -keyfile cluster.key -workloads hotspot
//
// Run under fault injection: -fault points at a JSON fault plan (see
// internal/fault.Plan) that every load connection is wrapped in, and
// -retry makes read sessions resilient so the run survives the chaos —
// killed connections redial, idempotent reads retry, failed writes are
// never re-sent (at-most-once), and the injector's tally lands in the
// report notes:
//
//	rsse-load ... -fault plan.json -retry 6 -op-timeout 2s
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"

	"rsse"
	"rsse/internal/fault"
	"rsse/internal/obs"
	"rsse/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "server address")
		name        = flag.String("name", rsse.DefaultIndexName, "served index name")
		keyfile     = flag.String("keyfile", "", "hex master key file (required)")
		workloads   = flag.String("workloads", "uniform,zipf", "comma-separated builtin workload specs")
		specPath    = flag.String("spec", "", "JSON workload spec file (overrides -workloads)")
		scale       = flag.Float64("scale", 1, "multiply every phase duration (0.2 = smoke run)")
		jsonPath    = flag.String("json", "", "write the machine-readable report here")
		baseline    = flag.String("baseline", "", "baseline report to gate against")
		gate        = flag.Float64("gate", 0.20, "allowed fractional regression vs -baseline")
		compareAddr = flag.String("compare-addr", "", "old-configuration server for the interleaved before/after comparison")
		compareReps = flag.Int("compare-reps", 1, "A/B pairs to run for the comparison (median wins; >1 tames noisy boxes)")
		compareMode = flag.String("compare-mode", "spawn-dispatch", "what the -compare-addr server differs in (e.g. legacy-kernel); labels the comparison and the @-suffixed run")
		dispatch    = flag.String("dispatch", "pooled", "dispatch mode label of -addr's server (report metadata)")
		manifest    = flag.String("manifest", "", "cluster manifest: drive the whole cluster instead of one index")
		writeName   = flag.String("writable-name", rsse.DefaultDynamicName, "writable-store name for write_fraction ops (rsse-server -writable)")
		opsAddr     = flag.String("ops-addr", "", "server ops address (rsse-server -ops): scrape /metrics before and after the run and embed the delta in the report")
		tdMemo      = flag.Int("td-memo", 16384, "per-session shared trapdoor memo capacity (0 derives every trapdoor fresh)")
		faultPath   = flag.String("fault", "", "JSON fault plan (internal/fault.Plan): wrap every load connection in deterministic fault injection")
		retry       = flag.Int("retry", 0, "resilient sessions: attempts per idempotent read op (0 disables redial/retry)")
		opTimeout   = flag.Duration("op-timeout", 0, "per-attempt deadline of resilient reads (0: none; required to recover black-holed connections)")
		cpuprofile  = flag.String("cpuprofile", "", "write a driver-side CPU profile here (the driver shares the box's CPU with the server; profile both)")
		version     = flag.Bool("version", false, "print version and exit")
		notes       multiFlag
	)
	flag.Var(&notes, "note", "free-form provenance line embedded in the report's notes (repeatable)")
	flag.Parse()
	if *version {
		fmt.Println("rsse-load", obs.Info())
		return
	}
	profiles, err := obs.StartProfiles(*cpuprofile, "")
	if err != nil {
		fatal(err)
	}
	stopProfiles = profiles.Stop
	defer profiles.Stop()
	if *keyfile == "" {
		fatal(fmt.Errorf("-keyfile is required"))
	}
	keyHex, err := os.ReadFile(*keyfile)
	if err != nil {
		fatal(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(keyHex)))
	if err != nil {
		fatal(fmt.Errorf("keyfile: %w", err))
	}

	specs, err := loadSpecs(*specPath, *workloads, *scale)
	if err != nil {
		fatal(err)
	}

	env, err := discover(*addr, *name, *manifest, key)
	if err != nil {
		fatal(err)
	}
	env.tdMemo = *tdMemo
	env.writableName = *writeName
	if *faultPath != "" {
		plan, err := fault.LoadPlan(*faultPath)
		if err != nil {
			fatal(err)
		}
		env.injector = fault.New(plan)
	}
	if *retry > 0 {
		env.retry = &rsse.RetryPolicy{MaxAttempts: *retry, OpTimeout: *opTimeout}
	} else if env.injector != nil {
		fmt.Fprintln(os.Stderr, "rsse-load: -fault without -retry: sessions will NOT recover killed connections")
	}
	for _, spec := range specs {
		if spec.WriteFraction > 0 && *manifest != "" {
			fatal(fmt.Errorf("workload %s: write_fraction is not supported against a cluster (no cluster update protocol)", spec.Name))
		}
	}
	report := workload.NewLoadReport(env.kind.String(), env.bits, *dispatch)
	var before map[string]float64
	if *opsAddr != "" {
		if before, err = obs.Scrape(*opsAddr); err != nil {
			fatal(fmt.Errorf("ops scrape before run: %w", err))
		}
	}
	ctx := context.Background()
	for _, spec := range specs {
		fmt.Fprintf(os.Stderr, "rsse-load: workload %s against %s\n", spec.Name, *addr)
		run, err := drive(ctx, env, *addr, spec)
		if err != nil {
			fatal(err)
		}
		report.Runs = append(report.Runs, *run)
	}

	if *compareAddr != "" {
		cmp, oldRun, err := compareAB(ctx, env, *addr, *compareAddr, *compareMode, *compareReps, specs, report.Runs)
		if err != nil {
			fatal(err)
		}
		report.DispatchComparison = cmp
		report.Runs = append(report.Runs, *oldRun)
	}
	report.Notes = notes
	if env.injector != nil {
		st := env.injector.Stats()
		report.Notes = append(report.Notes,
			fmt.Sprintf("fault: plan=%s seed=%d conns=%d drops=%d closes=%d blackholes=%d delays=%d truncations=%d",
				*faultPath, env.injector.Plan().Seed, st.Conns, st.Drops, st.Closes, st.BlackHoles, st.Delays, st.Truncations))
	}

	if *opsAddr != "" {
		after, err := obs.Scrape(*opsAddr)
		if err != nil {
			fatal(fmt.Errorf("ops scrape after run: %w", err))
		}
		// The delta is the server's own view of the run: counters as
		// after−before, gauges at their final value. It lands in the
		// report so client-observed and server-observed numbers (requests
		// vs ops, leakage tokens vs LeakageCounters) can be cross-checked
		// from one artifact.
		report.ServerMetrics = obs.Delta(before, after)
	}

	report.Print(os.Stdout)
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rsse-load: report written to %s\n", *jsonPath)
	}

	if *baseline != "" {
		base, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var cur strings.Builder
		if err := report.WriteJSON(&cur); err != nil {
			fatal(err)
		}
		if err := workload.CompareReports(base, []byte(cur.String()), *gate); err != nil {
			fmt.Fprintf(os.Stderr, "rsse-load: REGRESSION vs %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rsse-load: within %.0f%% of baseline %s\n", *gate*100, *baseline)
	}
}

// loadSpecs resolves the requested workloads and applies the duration
// scale.
func loadSpecs(specPath, names string, scale float64) ([]*workload.Spec, error) {
	var specs []*workload.Spec
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		s, err := workload.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	} else {
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			s, err := workload.Builtin(n)
			if err != nil {
				return nil, fmt.Errorf("%w\navailable workloads: %s", err, strings.Join(workload.BuiltinNames(), " "))
			}
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("rsse-load: no workloads selected")
	}
	if scale != 1 {
		for _, s := range specs {
			for i := range s.Phases {
				d := int(float64(s.Phases[i].DurationMS) * scale)
				if d < 50 {
					d = 50
				}
				s.Phases[i].DurationMS = d
			}
		}
	}
	return specs, nil
}

// env is everything discovered once and shared by all sessions.
type env struct {
	kind         rsse.Kind
	bits         uint8
	name         string
	key          []byte
	manifest     string
	man          rsse.ClusterManifest
	tdMemo       int
	writableName string
	// injector wraps every session connection when -fault is set; its
	// stats land in the report notes. retry, when set, makes sessions
	// resilient (-retry/-op-timeout). The discovery connection stays
	// clean either way.
	injector *fault.Injector
	retry    *rsse.RetryPolicy
}

// discover connects once to learn the scheme and domain so the load
// clients configure themselves from the server's own metadata.
func discover(addr, name, manifest string, key []byte) (*env, error) {
	e := &env{name: name, key: key, manifest: manifest}
	if manifest != "" {
		man, err := rsse.ReadClusterManifest(manifest)
		if err != nil {
			return nil, err
		}
		e.man = man
		cl, err := rsse.DialCluster("tcp", addr, man, key)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		e.kind = cl.Kind()
		e.bits = cl.Domain().Bits
		return e, nil
	}
	r, err := rsse.DialIndex("tcp", addr, name)
	if err != nil {
		return nil, fmt.Errorf("rsse-load: %s: %w", addr, err)
	}
	defer r.Close()
	if e.kind, err = r.Kind(); err != nil {
		return nil, fmt.Errorf("rsse-load: meta: %w", err)
	}
	if e.bits, err = r.DomainBits(); err != nil {
		return nil, fmt.Errorf("rsse-load: meta: %w", err)
	}
	return e, nil
}

// drive runs one spec against addr.
func drive(ctx context.Context, e *env, addr string, spec *workload.Spec) (*workload.RunReport, error) {
	r := &workload.Runner{
		Spec: spec,
		Bits: e.bits,
		NewSession: func() (workload.Session, error) {
			if e.manifest != "" {
				return newClusterSession(e, addr, spec.InFlight)
			}
			return newNodeSession(e, addr, spec.InFlight, spec.WriteFraction > 0)
		},
		OnPhase: func(p workload.PhaseReport) {
			fmt.Fprintf(os.Stderr, "  %-10s %9.1f qps  p99 %8.0fµs  err %d  shed %d\n",
				p.Name, p.QPS, p.Latency.P99Us, p.Errors, p.Shed)
		},
	}
	return r.Run(ctx)
}

// compareAB drives the zipf spec (or the first one) against the
// old-configuration server — interleaved A/B with the primary server
// when reps > 1, taking medians so one noisy-neighbour window can't
// decide the verdict. The last old-side run's full phase breakdown
// joins the report under "<workload>@<mode>" so the comparison's
// inputs stay inspectable.
func compareAB(ctx context.Context, e *env, pooledAddr, spawnAddr, mode string, reps int, specs []*workload.Spec, pooled []workload.RunReport) (*workload.DispatchComparison, *workload.RunReport, error) {
	pick := 0
	for i, s := range specs {
		if s.Name == "zipf" {
			pick = i
			break
		}
	}
	spec := specs[pick]
	p := pooled[pick]
	pooledQPS := []float64{p.SustainedQPS}
	pooledP99 := []float64{sustainP99(&p)}
	var spawnQPS, spawnP99 []float64
	var lastSpawn *workload.RunReport
	for rep := 0; rep < reps; rep++ {
		fmt.Fprintf(os.Stderr, "rsse-load: workload %s against %s (%s, rep %d/%d)\n", spec.Name, spawnAddr, mode, rep+1, reps)
		spawn, err := drive(ctx, e, spawnAddr, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("rsse-load: compare run: %w", err)
		}
		spawnQPS = append(spawnQPS, spawn.SustainedQPS)
		spawnP99 = append(spawnP99, sustainP99(spawn))
		lastSpawn = spawn
		if rep+1 < reps {
			fmt.Fprintf(os.Stderr, "rsse-load: workload %s against %s (primary, rep %d/%d)\n", spec.Name, pooledAddr, rep+2, reps)
			again, err := drive(ctx, e, pooledAddr, spec)
			if err != nil {
				return nil, nil, fmt.Errorf("rsse-load: compare run: %w", err)
			}
			pooledQPS = append(pooledQPS, again.SustainedQPS)
			pooledP99 = append(pooledP99, sustainP99(again))
		}
	}
	cmp := &workload.DispatchComparison{
		Workload:    spec.Name,
		Mode:        mode,
		PooledQPS:   median(pooledQPS),
		PooledP99Us: median(pooledP99),
		SpawnQPS:    median(spawnQPS),
		SpawnP99Us:  median(spawnP99),
	}
	if cmp.SpawnQPS > 0 {
		cmp.Speedup = cmp.PooledQPS / cmp.SpawnQPS
	}
	lastSpawn.Workload += "@" + mode
	return cmp, lastSpawn, nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// sustainP99 is the p99 of the phase that set SustainedQPS, so the
// comparison quotes throughput and tail latency from the same phase.
func sustainP99(r *workload.RunReport) float64 {
	for _, p := range r.Phases {
		if !p.Warmup && p.QPS == r.SustainedQPS {
			return p.Latency.P99Us
		}
	}
	return r.Latency.P99Us
}

// nodeSession is one multiplexed connection to a single served index.
// The wire Conn is safe for concurrent use but an owner Client is not,
// so the session keeps a pool of clients, one per in-flight slot. With
// writes enabled the session also dials the update namespace on the
// same address (RemoteDynamic is safe for concurrent use as-is).
type nodeSession struct {
	remote  *rsse.RemoteIndex
	clients chan *rsse.Client

	// The write path is deliberately NOT resilient: an errored update's
	// fate is unknown (it may have reached the WAL before the connection
	// died), so it is never re-sent — the op just counts as an error.
	// What redial buys here is that the NEXT write gets a fresh
	// connection instead of the sticky-dead one killing the whole run.
	dynMu   sync.Mutex
	dyn     *rsse.RemoteDynamic
	redials int
	dynDial func() (*rsse.RemoteDynamic, error)
}

func newNodeSession(e *env, addr string, inflight int, writes bool) (*nodeSession, error) {
	var dialOpts []rsse.DialOption
	if e.injector != nil {
		dialOpts = append(dialOpts, rsse.WithConnWrapper(e.injector.Wrap))
	}
	if e.retry != nil {
		dialOpts = append(dialOpts, rsse.WithRetry(*e.retry))
	}
	remote, err := rsse.DialIndexWith("tcp", addr, e.name, dialOpts...)
	if err != nil {
		return nil, err
	}
	s := &nodeSession{remote: remote, clients: make(chan *rsse.Client, inflight)}
	if writes {
		s.dynDial = func() (*rsse.RemoteDynamic, error) {
			return rsse.DialDynamic("tcp", addr, e.writableName)
		}
		if e.injector != nil {
			wrap, name := e.injector.Wrap, e.writableName
			s.dynDial = func() (*rsse.RemoteDynamic, error) {
				nc, err := new(net.Dialer).Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				return rsse.NewRemoteDynamic(wrap(nc), name), nil
			}
		}
		if s.dyn, err = s.dynDial(); err != nil {
			remote.Close()
			return nil, fmt.Errorf("write path (is the server running with -writable?): %w", err)
		}
	}
	// One memo for the whole session: all slot clients hold the same key,
	// so a range derived by one slot replays for every other.
	memo := rsse.NewTrapdoorMemo(e.tdMemo)
	for i := 0; i < inflight; i++ {
		c, err := rsse.NewClient(e.kind, e.bits,
			rsse.WithMasterKey(e.key), rsse.AllowIntersectingQueries(),
			rsse.WithSharedTrapdoorMemo(memo))
		if err != nil {
			remote.Close()
			return nil, err
		}
		s.clients <- c
	}
	return s, nil
}

func (s *nodeSession) Do(ctx context.Context, op *workload.Op) (workload.Metrics, error) {
	if w := op.Write; w != nil {
		// Writes carry no query-leakage counters; latency is what the
		// harness measures (acknowledged per the server's fsync policy).
		return workload.Metrics{}, s.write(w)
	}
	c := <-s.clients
	defer func() {
		// The Constant schemes log every issued range; a load run would
		// grow that history without bound.
		c.ResetHistory()
		s.clients <- c
	}()
	if len(op.Ranges) == 1 {
		q := op.Ranges[0]
		res, err := c.QueryRemoteContext(ctx, s.remote, rsse.Range{Lo: q.Lo, Hi: q.Hi})
		if err != nil {
			return workload.Metrics{}, err
		}
		st := res.Stats
		return workload.Metrics{
			Tokens:         uint64(st.Tokens),
			TokenBytes:     uint64(st.TokenBytes),
			ResponseItems:  uint64(st.ResponseItems),
			RawIDs:         uint64(st.Raw),
			FalsePositives: uint64(st.FalsePositives),
		}, nil
	}
	ranges := make([]rsse.Range, len(op.Ranges))
	for i, q := range op.Ranges {
		ranges[i] = rsse.Range{Lo: q.Lo, Hi: q.Hi}
	}
	br, err := c.QueryBatchRemoteContext(ctx, s.remote, ranges)
	if err != nil {
		return workload.Metrics{}, err
	}
	m := workload.Metrics{
		Tokens:        uint64(br.Stats.UniqueTokens),
		TokenBytes:    uint64(br.Stats.TokenBytes),
		ResponseItems: uint64(br.Stats.ResponseItems),
		RawIDs:        uint64(br.Stats.FetchedTuples),
	}
	for _, res := range br.Results {
		m.FalsePositives += uint64(res.Stats.FalsePositives)
	}
	return m, nil
}

// write sends one update. On a dead connection the failed op is NOT
// re-sent (its fate is unknown — at-most-once); the session redials so
// subsequent writes get a live connection instead of the corpse.
func (s *nodeSession) write(w *workload.WriteOp) error {
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	if s.dyn == nil {
		return fmt.Errorf("write op without a write path")
	}
	var err error
	if w.Del {
		err = s.dyn.Delete(w.ID, w.Value)
	} else {
		err = s.dyn.Insert(w.ID, w.Value, w.Payload)
	}
	if err != nil {
		s.dyn.Close()
		if fresh, derr := s.dynDial(); derr == nil {
			s.dyn = fresh
			s.redials++
		}
	}
	return err
}

func (s *nodeSession) Close() error {
	s.dynMu.Lock()
	if s.dyn != nil {
		s.dyn.Close()
	}
	s.dynMu.Unlock()
	return s.remote.Close()
}

// clusterSession drives a whole sharded cluster. A Cluster is not safe
// for concurrent queries (the shard owners share state), so like
// nodeSession it pools one dialled cluster per in-flight slot.
type clusterSession struct {
	clusters chan *rsse.Cluster
	all      []*rsse.Cluster
}

func newClusterSession(e *env, addr string, inflight int) (*clusterSession, error) {
	var clOpts []rsse.ClusterOption
	if e.injector != nil {
		clOpts = append(clOpts, rsse.WithShardConnWrapper(e.injector.Wrap))
	}
	if e.retry != nil {
		clOpts = append(clOpts, rsse.WithShardRetry(*e.retry), rsse.WithPartialResults())
	}
	s := &clusterSession{clusters: make(chan *rsse.Cluster, inflight)}
	for i := 0; i < inflight; i++ {
		cl, err := rsse.DialCluster("tcp", addr, e.man, e.key, clOpts...)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.all = append(s.all, cl)
		s.clusters <- cl
	}
	return s, nil
}

func (s *clusterSession) Do(ctx context.Context, op *workload.Op) (workload.Metrics, error) {
	cl := <-s.clusters
	defer func() {
		cl.ResetHistory()
		s.clusters <- cl
	}()
	if op.Write != nil {
		return workload.Metrics{}, fmt.Errorf("write ops are not supported against a cluster")
	}
	var m workload.Metrics
	// The cluster path has no batched protocol; a batch op runs
	// range-at-a-time on this slot's cluster.
	for _, q := range op.Ranges {
		res, err := cl.QueryContext(ctx, rsse.Range{Lo: q.Lo, Hi: q.Hi})
		if err != nil {
			return workload.Metrics{}, err
		}
		st := res.Stats
		m.Tokens += uint64(st.Tokens)
		m.TokenBytes += uint64(st.TokenBytes)
		m.ResponseItems += uint64(st.ResponseItems)
		m.RawIDs += uint64(st.Raw)
		m.FalsePositives += uint64(st.FalsePositives)
	}
	return m, nil
}

func (s *clusterSession) Close() error {
	for _, cl := range s.all {
		cl.Close()
	}
	return nil
}

// stopProfiles finalizes the -cpuprofile output; fatal exits route
// through it so a failed run still leaves a valid profile.
var stopProfiles = func() error { return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsse-load:", err)
	stopProfiles()
	os.Exit(2)
}
