// Command rsse-server serves serialized encrypted indexes (produced by
// rsse-owner build) to remote data owners. The server holds no keys: it
// can execute searches and return encrypted tuples, and learns nothing
// beyond the schemes' formal leakage.
//
// Serve a single index under the default name:
//
//	rsse-server -index table.idx -listen 127.0.0.1:7070
//
// Serve every *.idx file in a directory as one multi-index process, each
// index named after its file (salaries.idx → "salaries"; owners address
// one with rsse.DialIndex):
//
//	rsse-server -dir ./indexes -listen 127.0.0.1:7070
//
// A corrupt or unreadable file in the directory is logged and skipped —
// one bad index never takes the others down.
//
// A directory produced by rsse-owner shard build serves a whole cluster:
// each shard file loads as an ordinary named index (users-shard-0, ...),
// and any *.cluster.json manifest found alongside is summarized at
// startup — including shards the manifest pins to other servers, which
// is how one cluster spreads across a fleet. The server needs no shard
// configuration; the owner's manifest carries the topology.
//
// With -writable the server additionally hosts a durable dynamic store
// (Section 7 updates with forward privacy) that remote owners mutate
// via rsse-owner put/del/modify — every update is fsynced into the
// store's write-ahead log before it is acknowledged (tune with -sync),
// and SIGKILL at any moment loses nothing acknowledged: restarting the
// server on the same directory replays the log and resumes exactly.
//
//	rsse-server -writable ./dyn -scheme Logarithmic-BRC -bits 16 \
//	    -listen 127.0.0.1:7070
//
// An existing directory's parameters are adopted from its manifest, so
// restarts need only -writable. NOTE the trust model: a writable
// directory holds the store's master key, so a writable server is an
// owner-side durable write gateway, not the untrusted query server of
// the paper — deploy it with the owner's infrastructure (see
// ARCHITECTURE.md).
//
// Indexes load onto the read-optimized "sorted" storage engine by
// default. With -storage disk the server memory-maps v2 index files and
// serves them in place: directory mode then defers each file's open to
// its first query (-preload forces everything up front), so a multi-GB
// directory starts serving instantly and pays memory only for the
// indexes traffic actually touches. Per-index resident vs. file bytes
// are logged at load time.
//
// With -ops the server binds a second HTTP listener exposing the
// operational surface: Prometheus metrics on /metrics (request rates
// and latency histograms per op, dispatch queue depth, WAL and epoch
// state, and the per-index server-observed leakage counters), liveness
// on /healthz, readiness on /readyz (503 while draining), and the
// standard pprof handlers under /debug/pprof/. The ops port quantifies
// the deployment's leakage at full resolution and pprof is a remote
// profiling oracle — bind it to operator-trusted networks only:
//
//	rsse-server -dir ./indexes -ops 127.0.0.1:9090
//
// Diagnostics go to stderr as structured logs (-log-format text|json);
// -slow-query logs every request slower than the threshold with its op,
// index and duration.
//
// SIGINT/SIGTERM trigger a graceful shutdown: /readyz flips to 503
// first, -drain-grace gives load balancers time to observe it, then
// listeners close and in-flight requests finish and flush before
// connections drop (shed requests get overload responses, not errors).
// -cpuprofile and -memprofile write pprof profiles of the serving
// process, finalized during graceful shutdown — or grab one live from
// /debug/pprof/profile on the ops port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rsse"
	"rsse/internal/obs"
)

// logger is the process-wide structured logger, configured from
// -log-format before any serving starts.
var logger *slog.Logger

// profiles owns the optional -cpuprofile/-memprofile outputs. It is a
// package variable so fatal() can finalize them: without that, any
// error exit (bad index file, port in use, failed shutdown) would
// leave a truncated, unreadable CPU profile behind.
var profiles *obs.Profiles

func main() {
	indexPath := flag.String("index", "", "serialized index file, served as \"default\"")
	dir := flag.String("dir", "", "directory of .idx files, each served under its basename")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	ops := flag.String("ops", "", "ops listen address for /metrics, /healthz, /readyz and /debug/pprof (operator-trusted networks only)")
	engine := flag.String("storage", "sorted",
		"storage engine for loaded indexes: "+strings.Join(rsse.StorageEngines(), "|"))
	preload := flag.Bool("preload", false, "with -dir -storage disk: open every index at startup instead of on first query")
	prefetch := flag.Bool("prefetch", false, "with -storage disk: madvise each opened index's mapping into the page cache ahead of traffic (trades resident memory for warm first queries)")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	drainGrace := flag.Duration("drain-grace", 0, "time to stay up (not-ready on /readyz) before draining, so load balancers stop routing first")
	dispatch := flag.String("dispatch", "pooled", "connection dispatch mode: pooled (bounded worker pool + coalesced writes) or spawn (legacy goroutine-per-request, for before/after load tests)")
	writable := flag.String("writable", "", "durable dynamic store directory to host for remote updates")
	writableName := flag.String("writable-name", rsse.DefaultDynamicName, "update-namespace name the writable store serves under")
	scheme := flag.String("scheme", "Logarithmic-BRC", "with -writable on a fresh directory: scheme of the dynamic store")
	bits := flag.Uint("bits", 16, "with -writable on a fresh directory: domain bits of the dynamic store")
	step := flag.Int("step", 0, "with -writable on a fresh directory: consolidation step (0 = default)")
	syncEvery := flag.Int("sync", 1, "with -writable: fsync the WAL every N updates (1 = every acknowledged update is durable)")
	prfKernel := flag.String("prf-kernel", "batched", "token search path: batched (lane-batched PRF + derived-state cache) or legacy (scalar, for before/after load tests)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	slowQuery := flag.Duration("slow-query", 0, "log requests whose execution exceeds this threshold (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the serving process to this file (finalized on every exit path: drain, signal, fatal)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on graceful shutdown")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("rsse-server", obs.Info())
		return
	}
	var err error
	if logger, err = setupLogging(*logFormat, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "rsse-server:", err)
		os.Exit(2)
	}
	// Profile finalization must run on every exit path — graceful drain,
	// signal, fatal error — or the CPU profile file is empty. obs.Profiles
	// is idempotent, so the racing paths can all call Stop.
	if profiles, err = obs.StartProfiles(*cpuProfile, *memProfile); err != nil {
		fatal(err)
	}
	if err := rsse.SetSearchKernel(*prfKernel); err != nil {
		fmt.Fprintln(os.Stderr, "rsse-server:", err)
		os.Exit(2)
	}
	if *indexPath != "" && *dir != "" {
		fmt.Fprintln(os.Stderr, "rsse-server: -index and -dir are mutually exclusive")
		os.Exit(2)
	}
	if *indexPath == "" && *dir == "" && *writable == "" {
		fmt.Fprintln(os.Stderr, "rsse-server: one of -index, -dir or -writable is required")
		os.Exit(2)
	}

	reg := rsse.NewRegistry()
	var dyn *rsse.Dynamic
	if *writable != "" {
		if dyn, err = openWritable(*writable, *scheme, uint8(*bits), *step, *syncEvery); err != nil {
			fatal(err)
		}
		if err := reg.RegisterWritable(*writableName, dyn); err != nil {
			fatal(err)
		}
	}
	if *indexPath != "" {
		if err := load(reg, rsse.DefaultIndexName, *indexPath, *engine, *prefetch); err != nil {
			fatal(err)
		}
	} else if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal(err)
		}
		// The disk engine serves files by mmap, so deferring each open to
		// the first query costs nothing but a page fault later; rebuild
		// engines load eagerly so a bad file surfaces at startup.
		lazy := *engine == "disk" && !*preload
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".idx") {
				continue
			}
			name := strings.TrimSuffix(e.Name(), ".idx")
			path := filepath.Join(*dir, e.Name())
			if lazy {
				err = registerLazy(reg, name, path, *engine, *prefetch)
			} else {
				err = load(reg, name, path, *engine, *prefetch)
			}
			if err != nil {
				// One corrupt index must not take down the server.
				logger.Warn("skipping index", "path", path, "err", err)
			}
		}
		if len(reg.Names()) == 0 {
			fatal(fmt.Errorf("no loadable .idx files in %s", *dir))
		}
		logClusters(*dir, reg)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	logger.Info("serving", "indexes", len(reg.Names()), "addr", l.Addr().String(),
		"storage", *engine, "dispatch", *dispatch, "prf_kernel", rsse.SearchKernelName(),
		"version", obs.Version)
	if dyn != nil {
		logger.Info("writable store ready", "name", *writableName, "addr", l.Addr().String())
	}

	// The ops endpoint comes up before serving and reports not-ready
	// until the query listener is accepting; build info is registered so
	// every scrape identifies the binary.
	ready := obs.NewReadiness()
	var stopOps func()
	if *ops != "" {
		obs.RegisterBuildInfo(obs.Default)
		bound, stop, err := obs.Serve(*ops, obs.Default, ready)
		if err != nil {
			fatal(err)
		}
		stopOps = stop
		logger.Info("ops endpoint up", "addr", bound)
	}

	srv := rsse.NewServer(reg)
	if err := srv.SetDispatch(*dispatch); err != nil {
		fatal(err)
	}
	srv.SetLogger(logger)
	srv.SetSlowQuery(*slowQuery)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	ready.SetReady(true)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Flip readiness first so traffic directors stop routing, give
		// them -drain-grace to notice, then drain in-flight requests.
		ready.SetReady(false)
		logger.Info("shutdown signal", "signal", s.String(), "grace", *drainGrace, "drain", *drain)
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("forced shutdown", "err", err)
			os.Exit(1)
		}
		if dyn != nil {
			// Pending updates stay pending: they are durable in the WAL
			// and recover exactly on the next start.
			if err := dyn.Close(); err != nil {
				logger.Error("closing writable store", "err", err)
				os.Exit(1)
			}
		}
		if stopOps != nil {
			stopOps()
		}
		stopProfiles()
		logger.Info("drained, bye")
	case err := <-done:
		if err != nil {
			fatal(err)
		}
		if stopOps != nil {
			stopOps()
		}
		stopProfiles()
	}
}

// setupLogging builds the process logger from the -log-format and
// -log-level flags and installs it as the slog default.
func setupLogging(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	l, err := obs.NewLogger(format, os.Stderr, lvl)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}

// stopProfiles finalizes the pprof captures, logging (not dying on)
// any write failure: by the time it runs the process is exiting and a
// broken profile must not mask the real exit status.
func stopProfiles() {
	if profiles == nil {
		return
	}
	if err := profiles.Stop(); err != nil && logger != nil {
		logger.Error("finalizing profiles", "err", err)
	}
}

// openWritable opens (creating if fresh) the durable dynamic store. An
// existing directory's manifest parameters win over the flags, so
// restarts need only -writable.
func openWritable(dir, scheme string, bits uint8, step, syncEvery int) (*rsse.Dynamic, error) {
	kind, err := rsse.KindByName(scheme)
	if err != nil {
		return nil, err
	}
	if meta, err := rsse.PeekDynamicDir(dir); err == nil {
		kind, bits, step = meta.Kind, meta.DomainBits, meta.Step
		logger.Info("writable store: adopting manifest", "dir", dir,
			"scheme", kind.String(), "bits", bits, "step", step)
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		logger.Info("writable store: fresh", "dir", dir, "scheme", kind.String(), "bits", bits)
	}
	dyn, err := rsse.OpenDynamic(dir, kind, bits, step, rsse.WithSyncEvery(syncEvery))
	if err != nil {
		return nil, err
	}
	logger.Info("writable store recovered", "dir", dir,
		"epochs", dyn.ActiveIndexes(), "pending", dyn.Pending(), "sync_every", syncEvery)
	return dyn, nil
}

// load reads, parses and registers one index file eagerly. With
// prefetch, a mapped index's pages stream into the page cache now
// instead of faulting in one by one under the first queries.
func load(reg *rsse.Registry, name, path, engine string, prefetch bool) error {
	index, err := rsse.OpenIndexFile(path, engine)
	if err != nil {
		return err
	}
	if prefetch {
		index.Prefetch()
	}
	if err := reg.Register(name, index); err != nil {
		index.Close()
		return err
	}
	logLoaded(name, index.Stats())
	return nil
}

// registerLazy validates the file's header now but defers the real open
// — an mmap plus checksum pass — to the first query addressing name.
func registerLazy(reg *rsse.Registry, name, path, engine string, prefetch bool) error {
	meta, err := rsse.PeekIndexFile(path)
	if err != nil {
		return err
	}
	if err := reg.RegisterLazy(name, func() (*rsse.Index, error) {
		index, err := rsse.OpenIndexFile(path, engine)
		if err != nil {
			logger.Warn("lazy open failed", "path", path, "err", err)
			return nil, err
		}
		if prefetch {
			index.Prefetch()
		}
		logLoaded(name, index.Stats())
		return index, nil
	}); err != nil {
		return err
	}
	logger.Info("index registered lazily", "index", name,
		"scheme", meta.Kind.String(), "tuples", meta.N)
	return nil
}

// logClusters reports the sharded-cluster topology of a served
// directory: every *.cluster.json manifest written by rsse-owner shard
// build is summarized, noting shards whose index files are missing
// locally (they may legitimately live on another server of the fleet —
// the manifest's shard→addr table routes owners there). The server
// needs no cluster configuration to serve shards: each shard is an
// ordinary named index.
func logClusters(dir string, reg *rsse.Registry) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	served := make(map[string]bool)
	for _, name := range reg.Names() {
		served[name] = true
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cluster.json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		man, err := rsse.ReadClusterManifest(path)
		if err != nil {
			logger.Warn("ignoring cluster manifest", "path", path, "err", err)
			continue
		}
		local := 0
		var missing []string
		for _, s := range man.Shards {
			if served[s.Name] {
				local++
			} else if s.Addr == "" {
				missing = append(missing, s.Name)
			}
		}
		logger.Info("cluster", "name", strings.TrimSuffix(e.Name(), ".cluster.json"),
			"scheme", man.Kind, "bits", man.DomainBits,
			"shards", len(man.Shards), "served_here", local)
		if len(missing) > 0 {
			logger.Warn("cluster shards not served here and not pinned elsewhere",
				"manifest", e.Name(), "missing", strings.Join(missing, ", "))
		}
	}
}

// logLoaded logs one loaded index's operational profile: name, scheme,
// tuple count, and where its bytes live (resident heap vs. backing file).
func logLoaded(name string, s rsse.IndexStats) {
	logger.Info("index loaded", "index", name, "scheme", s.Kind.String(),
		"tuples", s.N, "engine", s.Engine,
		"index_mb", float64(s.IndexBytes)/(1<<20),
		"store_mb", float64(s.StoreBytes)/(1<<20),
		"resident_mb", float64(s.Resident)/(1<<20),
		"file_mb", float64(s.FileBytes)/(1<<20))
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "rsse-server:", err)
	}
	stopProfiles()
	os.Exit(1)
}
