// Command rsse-server serves serialized encrypted indexes (produced by
// rsse-owner build) to remote data owners. The server holds no keys: it
// can execute searches and return encrypted tuples, and learns nothing
// beyond the schemes' formal leakage.
//
// Serve a single index under the default name:
//
//	rsse-server -index table.idx -listen 127.0.0.1:7070
//
// Serve every *.idx file in a directory as one multi-index process, each
// index named after its file (salaries.idx → "salaries"; owners address
// one with rsse.DialIndex):
//
//	rsse-server -dir ./indexes -listen 127.0.0.1:7070
//
// Indexes load onto the read-optimized "sorted" storage engine by
// default (-storage map restores hash tables). SIGINT/SIGTERM trigger a
// graceful shutdown: listeners close immediately, in-flight requests
// finish and flush before connections drop.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rsse"
)

func main() {
	indexPath := flag.String("index", "", "serialized index file, served as \"default\"")
	dir := flag.String("dir", "", "directory of .idx files, each served under its basename")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	engine := flag.String("storage", "sorted", "storage engine for loaded indexes: map|sorted")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	flag.Parse()
	if (*indexPath == "") == (*dir == "") {
		fmt.Fprintln(os.Stderr, "rsse-server: exactly one of -index and -dir is required")
		os.Exit(2)
	}

	reg := rsse.NewRegistry()
	if *indexPath != "" {
		if err := load(reg, rsse.DefaultIndexName, *indexPath, *engine); err != nil {
			fatal(err)
		}
	} else {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".idx") {
				continue
			}
			name := strings.TrimSuffix(e.Name(), ".idx")
			if err := load(reg, name, filepath.Join(*dir, e.Name()), *engine); err != nil {
				fatal(err)
			}
		}
		if len(reg.Names()) == 0 {
			fatal(fmt.Errorf("no .idx files in %s", *dir))
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rsse-server: serving %d index(es) on %s (%s storage)\n",
		len(reg.Names()), l.Addr(), *engine)

	srv := rsse.NewServer(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("rsse-server: %v — draining (up to %v)\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rsse-server: forced shutdown:", err)
			os.Exit(1)
		}
		fmt.Println("rsse-server: drained, bye")
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
}

// load reads, parses and registers one index file.
func load(reg *rsse.Registry, name, path, engine string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	index, err := rsse.UnmarshalIndexWith(blob, engine)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := reg.Register(name, index); err != nil {
		return err
	}
	fmt.Printf("rsse-server: %-20q %v  %d tuples  %.1f MB index\n",
		name, index.Kind(), index.N(), float64(index.Size())/(1<<20))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsse-server:", err)
	os.Exit(1)
}
