// Command rsse-server serves serialized encrypted indexes (produced by
// rsse-owner build) to remote data owners. The server holds no keys: it
// can execute searches and return encrypted tuples, and learns nothing
// beyond the schemes' formal leakage.
//
// Serve a single index under the default name:
//
//	rsse-server -index table.idx -listen 127.0.0.1:7070
//
// Serve every *.idx file in a directory as one multi-index process, each
// index named after its file (salaries.idx → "salaries"; owners address
// one with rsse.DialIndex):
//
//	rsse-server -dir ./indexes -listen 127.0.0.1:7070
//
// A corrupt or unreadable file in the directory is logged and skipped —
// one bad index never takes the others down.
//
// A directory produced by rsse-owner shard build serves a whole cluster:
// each shard file loads as an ordinary named index (users-shard-0, ...),
// and any *.cluster.json manifest found alongside is summarized at
// startup — including shards the manifest pins to other servers, which
// is how one cluster spreads across a fleet. The server needs no shard
// configuration; the owner's manifest carries the topology.
//
// With -writable the server additionally hosts a durable dynamic store
// (Section 7 updates with forward privacy) that remote owners mutate
// via rsse-owner put/del/modify — every update is fsynced into the
// store's write-ahead log before it is acknowledged (tune with -sync),
// and SIGKILL at any moment loses nothing acknowledged: restarting the
// server on the same directory replays the log and resumes exactly.
//
//	rsse-server -writable ./dyn -scheme Logarithmic-BRC -bits 16 \
//	    -listen 127.0.0.1:7070
//
// An existing directory's parameters are adopted from its manifest, so
// restarts need only -writable. NOTE the trust model: a writable
// directory holds the store's master key, so a writable server is an
// owner-side durable write gateway, not the untrusted query server of
// the paper — deploy it with the owner's infrastructure (see
// ARCHITECTURE.md).
//
// Indexes load onto the read-optimized "sorted" storage engine by
// default. With -storage disk the server memory-maps v2 index files and
// serves them in place: directory mode then defers each file's open to
// its first query (-preload forces everything up front), so a multi-GB
// directory starts serving instantly and pays memory only for the
// indexes traffic actually touches. Per-index resident vs. file bytes
// are logged at load time.
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close
// immediately, in-flight requests finish and flush before connections
// drop. -cpuprofile and -memprofile write pprof profiles of the
// serving process, finalized during graceful shutdown — profile a load,
// then SIGINT the server and run `go tool pprof` on the files.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"rsse"
)

func main() {
	indexPath := flag.String("index", "", "serialized index file, served as \"default\"")
	dir := flag.String("dir", "", "directory of .idx files, each served under its basename")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	engine := flag.String("storage", "sorted",
		"storage engine for loaded indexes: "+strings.Join(rsse.StorageEngines(), "|"))
	preload := flag.Bool("preload", false, "with -dir -storage disk: open every index at startup instead of on first query")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	dispatch := flag.String("dispatch", "pooled", "connection dispatch mode: pooled (bounded worker pool + coalesced writes) or spawn (legacy goroutine-per-request, for before/after load tests)")
	writable := flag.String("writable", "", "durable dynamic store directory to host for remote updates")
	writableName := flag.String("writable-name", rsse.DefaultDynamicName, "update-namespace name the writable store serves under")
	scheme := flag.String("scheme", "Logarithmic-BRC", "with -writable on a fresh directory: scheme of the dynamic store")
	bits := flag.Uint("bits", 16, "with -writable on a fresh directory: domain bits of the dynamic store")
	step := flag.Int("step", 0, "with -writable on a fresh directory: consolidation step (0 = default)")
	syncEvery := flag.Int("sync", 1, "with -writable: fsync the WAL every N updates (1 = every acknowledged update is durable)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the serving process to this file (finalized on graceful shutdown)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on graceful shutdown")
	flag.Parse()
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	if *indexPath != "" && *dir != "" {
		fmt.Fprintln(os.Stderr, "rsse-server: -index and -dir are mutually exclusive")
		os.Exit(2)
	}
	if *indexPath == "" && *dir == "" && *writable == "" {
		fmt.Fprintln(os.Stderr, "rsse-server: one of -index, -dir or -writable is required")
		os.Exit(2)
	}

	reg := rsse.NewRegistry()
	var dyn *rsse.Dynamic
	if *writable != "" {
		var err error
		if dyn, err = openWritable(*writable, *scheme, uint8(*bits), *step, *syncEvery); err != nil {
			fatal(err)
		}
		if err := reg.RegisterWritable(*writableName, dyn); err != nil {
			fatal(err)
		}
	}
	if *indexPath != "" {
		if err := load(reg, rsse.DefaultIndexName, *indexPath, *engine); err != nil {
			fatal(err)
		}
	} else if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal(err)
		}
		// The disk engine serves files by mmap, so deferring each open to
		// the first query costs nothing but a page fault later; rebuild
		// engines load eagerly so a bad file surfaces at startup.
		lazy := *engine == "disk" && !*preload
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".idx") {
				continue
			}
			name := strings.TrimSuffix(e.Name(), ".idx")
			path := filepath.Join(*dir, e.Name())
			if lazy {
				err = registerLazy(reg, name, path, *engine)
			} else {
				err = load(reg, name, path, *engine)
			}
			if err != nil {
				// One corrupt index must not take down the server.
				fmt.Fprintf(os.Stderr, "rsse-server: skipping %s: %v\n", path, err)
			}
		}
		if len(reg.Names()) == 0 {
			fatal(fmt.Errorf("no loadable .idx files in %s", *dir))
		}
		logClusters(*dir, reg)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rsse-server: serving %d index(es) on %s (%s storage)\n",
		len(reg.Names()), l.Addr(), *engine)
	if dyn != nil {
		fmt.Printf("rsse-server: writable store %q ready on %s\n", *writableName, l.Addr())
	}

	srv := rsse.NewServer(reg)
	if err := srv.SetDispatch(*dispatch); err != nil {
		fatal(err)
	}
	if *dispatch != "pooled" {
		fmt.Printf("rsse-server: %s dispatch\n", *dispatch)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("rsse-server: %v — draining (up to %v)\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rsse-server: forced shutdown:", err)
			os.Exit(1)
		}
		if dyn != nil {
			// Pending updates stay pending: they are durable in the WAL
			// and recover exactly on the next start.
			if err := dyn.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rsse-server: closing writable store:", err)
				os.Exit(1)
			}
		}
		stopProfiles()
		fmt.Println("rsse-server: drained, bye")
	case err := <-done:
		if err != nil {
			fatal(err)
		}
		stopProfiles()
	}
}

// startProfiles begins the requested pprof captures and returns the
// finalizer the graceful-shutdown path runs: it stops the CPU profile
// and snapshots the heap after a final GC, so the files are complete
// and readable by `go tool pprof`.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fatal(err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

// openWritable opens (creating if fresh) the durable dynamic store. An
// existing directory's manifest parameters win over the flags, so
// restarts need only -writable.
func openWritable(dir, scheme string, bits uint8, step, syncEvery int) (*rsse.Dynamic, error) {
	kind, err := rsse.KindByName(scheme)
	if err != nil {
		return nil, err
	}
	if meta, err := rsse.PeekDynamicDir(dir); err == nil {
		kind, bits, step = meta.Kind, meta.DomainBits, meta.Step
		fmt.Printf("rsse-server: writable %s: adopting %v, domain 2^%d, step %d from manifest\n",
			dir, kind, bits, step)
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		fmt.Printf("rsse-server: writable %s: fresh store (%v, domain 2^%d)\n", dir, kind, bits)
	}
	dyn, err := rsse.OpenDynamic(dir, kind, bits, step, rsse.WithSyncEvery(syncEvery))
	if err != nil {
		return nil, err
	}
	fmt.Printf("rsse-server: writable %s: %d active epochs, %d pending recovered updates (fsync every %d)\n",
		dir, dyn.ActiveIndexes(), dyn.Pending(), syncEvery)
	return dyn, nil
}

// load reads, parses and registers one index file eagerly.
func load(reg *rsse.Registry, name, path, engine string) error {
	index, err := rsse.OpenIndexFile(path, engine)
	if err != nil {
		return err
	}
	if err := reg.Register(name, index); err != nil {
		index.Close()
		return err
	}
	logLoaded(name, index.Stats())
	return nil
}

// registerLazy validates the file's header now but defers the real open
// — an mmap plus checksum pass — to the first query addressing name.
func registerLazy(reg *rsse.Registry, name, path, engine string) error {
	meta, err := rsse.PeekIndexFile(path)
	if err != nil {
		return err
	}
	if err := reg.RegisterLazy(name, func() (*rsse.Index, error) {
		index, err := rsse.OpenIndexFile(path, engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsse-server: lazy open %s: %v\n", path, err)
			return nil, err
		}
		logLoaded(name, index.Stats())
		return index, nil
	}); err != nil {
		return err
	}
	fmt.Printf("rsse-server: %-20q %v  %d tuples  registered lazily (opens on first query)\n",
		name, meta.Kind, meta.N)
	return nil
}

// logClusters reports the sharded-cluster topology of a served
// directory: every *.cluster.json manifest written by rsse-owner shard
// build is summarized, noting shards whose index files are missing
// locally (they may legitimately live on another server of the fleet —
// the manifest's shard→addr table routes owners there). The server
// needs no cluster configuration to serve shards: each shard is an
// ordinary named index.
func logClusters(dir string, reg *rsse.Registry) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	served := make(map[string]bool)
	for _, name := range reg.Names() {
		served[name] = true
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cluster.json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		man, err := rsse.ReadClusterManifest(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsse-server: ignoring manifest %s: %v\n", path, err)
			continue
		}
		local := 0
		var missing []string
		for _, s := range man.Shards {
			if served[s.Name] {
				local++
			} else if s.Addr == "" {
				missing = append(missing, s.Name)
			}
		}
		fmt.Printf("rsse-server: cluster %-14q %s  domain 2^%d  %d shards (%d served here)\n",
			strings.TrimSuffix(e.Name(), ".cluster.json"), man.Kind, man.DomainBits, len(man.Shards), local)
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "rsse-server: cluster %s: shards not served here and not pinned elsewhere: %s\n",
				e.Name(), strings.Join(missing, ", "))
		}
	}
}

// logLoaded prints one loaded index's operational profile: name, scheme,
// tuple count, and where its bytes live (resident heap vs. backing file).
func logLoaded(name string, s rsse.IndexStats) {
	fmt.Printf("rsse-server: %-20q %v  %d tuples  %.1f MB index  %.1f MB store  [%s: %.1f MB resident, %.1f MB file]\n",
		name, s.Kind, s.N,
		float64(s.IndexBytes)/(1<<20), float64(s.StoreBytes)/(1<<20),
		s.Engine, float64(s.Resident)/(1<<20), float64(s.FileBytes)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsse-server:", err)
	os.Exit(1)
}
