// Command rsse-server serves a serialized encrypted index (produced by
// rsse-owner build) to remote data owners. The server holds no keys: it
// can execute searches and return encrypted tuples, and learns nothing
// beyond the scheme's formal leakage.
//
// Usage:
//
//	rsse-server -index table.idx -listen 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"rsse"
	"rsse/internal/core"
)

func main() {
	indexPath := flag.String("index", "", "serialized index file (required)")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	flag.Parse()
	if *indexPath == "" {
		fmt.Fprintln(os.Stderr, "rsse-server: -index is required")
		os.Exit(2)
	}
	blob, err := os.ReadFile(*indexPath)
	if err != nil {
		fatal(err)
	}
	index, err := core.UnmarshalIndex(blob)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rsse-server: serving %s index (%d tuples, %.1f MB) on %s\n",
		index.Kind(), index.N(), float64(index.Size())/(1<<20), l.Addr())
	if err := rsse.Serve(l, index); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsse-server:", err)
	os.Exit(1)
}
