package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildServer compiles the rsse-server binary once per test run and
// returns its path. Exec-level tests are the only way to prove the
// profile-finalization contract: the bug class being guarded against
// is an exit path that skips pprof.StopCPUProfile, which no in-process
// test can observe.
var buildServer = sync.OnceValues(func() (string, error) {
	bin := filepath.Join(os.TempDir(), "rsse-server-under-test")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		return "", &buildError{out: string(out), err: err}
	}
	return bin, nil
})

type buildError struct {
	out string
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

// checkProfile fails the test unless path holds a finalized CPU
// profile: pprof output is a gzip stream, and an unfinalized profile
// is an empty (or truncated) file that gzip refuses.
func checkProfile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(raw) == 0 {
		t.Fatalf("profile %s is empty: CPU profile was never finalized", path)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("profile %s is not a gzip stream (%v): finalization was skipped mid-write", path, err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile %s truncated: %v", path, err)
	}
	if len(body) == 0 {
		t.Fatalf("profile %s decodes to nothing", path)
	}
}

// startServer launches the built binary with a fresh writable store (no
// index file needed) and a CPU profile, waits until it is serving, and
// returns the running command plus the profile path.
func startServer(t *testing.T, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	bin, err := buildServer()
	if err != nil {
		t.Fatalf("building rsse-server: %v", err)
	}
	dir := t.TempDir()
	prof := filepath.Join(dir, "cpu.prof")
	args := append([]string{
		"-writable", filepath.Join(dir, "store"),
		"-listen", "127.0.0.1:0",
		"-cpuprofile", prof,
	}, extra...)
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting rsse-server: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(stderr.String(), "serving") {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("server never reported serving; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cmd, prof
}

// TestCPUProfileFinalizedOnSignal proves SIGTERM and SIGINT shutdowns
// both leave a complete, parseable CPU profile behind.
func TestCPUProfileFinalizedOnSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test")
	}
	for _, sig := range []syscall.Signal{syscall.SIGTERM, syscall.SIGINT} {
		t.Run(sig.String(), func(t *testing.T) {
			cmd, prof := startServer(t)
			if err := cmd.Process.Signal(sig); err != nil {
				t.Fatalf("signaling: %v", err)
			}
			if err := cmd.Wait(); err != nil {
				t.Fatalf("server exited with error: %v", err)
			}
			checkProfile(t, prof)
		})
	}
}

// TestCPUProfileFinalizedOnFatal proves the error-exit path (here: an
// unloadable index file) finalizes the profile too — the path the old
// closure-based finalizer missed entirely.
func TestCPUProfileFinalizedOnFatal(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test")
	}
	bin, err := buildServer()
	if err != nil {
		t.Fatalf("building rsse-server: %v", err)
	}
	dir := t.TempDir()
	prof := filepath.Join(dir, "cpu.prof")
	bogus := filepath.Join(dir, "bogus.idx")
	if err := os.WriteFile(bogus, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-index", bogus, "-cpuprofile", prof)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("server accepted a bogus index; output:\n%s", out)
	}
	checkProfile(t, prof)
}
