// Command rsse-owner is the data owner's CLI: it builds encrypted indexes
// from CSV data and queries them, locally or over the network against an
// rsse-server.
//
// Build an index (writes the index file and a hex key file):
//
//	rsse-owner build -scheme Logarithmic-SRC-i -csv data.csv \
//	    -out table.idx -keyfile table.key [-bits 20]
//
// The CSV must have an "id,value" header row, one tuple per line; an
// optional third column is stored as the encrypted payload.
//
// Query a local index file:
//
//	rsse-owner query -index table.idx -keyfile table.key \
//	    -scheme Logarithmic-SRC-i -bits 20 -lo 100 -hi 500
//
// Query a remote rsse-server:
//
//	rsse-owner query -addr 127.0.0.1:7070 -keyfile table.key \
//	    -scheme Logarithmic-SRC-i -bits 20 -lo 100 -hi 500
//
// Run many ranges as ONE batched query — covers shared across the ranges
// are deduplicated into a single multi-trapdoor, and on a remote server
// the whole batch costs one round trip per round:
//
//	rsse-owner query -addr 127.0.0.1:7070 -keyfile table.key \
//	    -scheme Logarithmic-SRC-i -bits 20 -ranges queries.txt
//
// where queries.txt holds one "lo,hi" per line (a bare value is a point
// query; blank lines and #-comments are skipped).
//
// Inspect an index file's operational profile (no key needed — these are
// exactly the stats the server can see anyway):
//
//	rsse-owner stats -index table.idx [-storage disk]
//
// With -storage disk the index is memory-mapped and served in place, so
// "resident" shows near zero — the number to compare against "file" when
// sizing a deployment.
//
// Build a sharded cluster: the domain splits into -shards contiguous
// slices (equal-width, or on dataset quantiles with -split quantile),
// each shard becomes an independent index under an independently derived
// key, and the output directory receives one .idx per shard plus a
// cluster manifest:
//
//	rsse-owner shard build -scheme Logarithmic-SRC-i -csv data.csv \
//	    -shards 4 -outdir ./cluster -name users -keyfile cluster.key
//
// Serve the directory with rsse-server -dir ./cluster; every shard is
// then addressable under its manifest name. Query the cluster — the
// range splits at shard boundaries and the sub-queries run concurrently:
//
//	rsse-owner shard query -manifest ./cluster/users.cluster.json \
//	    -keyfile cluster.key -addr 127.0.0.1:7070 -lo 100 -hi 500
//
// Without -addr the shards are opened from the manifest's directory
// locally.
//
// Mutate a writable server (rsse-server -writable) remotely — each
// update is acknowledged only once the server has it in its write-ahead
// log, so an acknowledged put survives even kill -9 of the server:
//
//	rsse-owner put    -addr 127.0.0.1:7070 -id 42 -value 1200 -payload "alice"
//	rsse-owner del    -addr 127.0.0.1:7070 -id 42 -value 1200
//	rsse-owner modify -addr 127.0.0.1:7070 -id 42 -old 1200 -new 1500
//	rsse-owner flush  -addr 127.0.0.1:7070
//	rsse-owner get    -addr 127.0.0.1:7070 -lo 1000 -hi 2000
//
// put/del/modify buffer on the server; flush seals the pending batch
// into a fresh forward-private epoch (put -flush does both). get
// queries the flushed epochs and prints decrypted live tuples — the
// writable server holds the store's keys (it is the owner's durable
// write gateway), which is why no keyfile appears here.
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rsse"
	"rsse/internal/core"
	"rsse/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "version", "-version", "--version":
		fmt.Println("rsse-owner", obs.Info())
	case "build":
		build(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "put", "del", "modify", "flush", "get":
		dynamic(os.Args[1], os.Args[2:])
	case "shard":
		if len(os.Args) < 3 {
			usage()
		}
		switch os.Args[2] {
		case "build":
			shardBuild(os.Args[3:])
		case "query":
			shardQuery(os.Args[3:])
		default:
			usage()
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rsse-owner build|query|stats|put|del|modify|flush|get|shard build|shard query|version [flags] (see package docs)")
	os.Exit(2)
}

// dynamic runs one remote-update subcommand against a writable server.
func dynamic(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "writable rsse-server address")
	name := fs.String("name", rsse.DefaultDynamicName, "writable store name on the server")
	id := fs.Uint64("id", 0, "tuple id (put, del, modify)")
	value := fs.Uint64("value", 0, "tuple value (put) / current value (del)")
	oldValue := fs.Uint64("old", 0, "current value (modify)")
	newValue := fs.Uint64("new", 0, "new value (modify)")
	payload := fs.String("payload", "", "tuple payload (put, modify)")
	lo := fs.Uint64("lo", 0, "range lower bound (get)")
	hi := fs.Uint64("hi", 0, "range upper bound (get)")
	doFlush := fs.Bool("flush", false, "also seal the pending batch after the update")
	_ = fs.Parse(args)

	remote, err := rsse.DialDynamic("tcp", *addr, *name)
	if err != nil {
		fatal(err)
	}
	defer remote.Close()

	switch cmd {
	case "put":
		err = remote.Insert(*id, *value, []byte(*payload))
		if err == nil {
			fmt.Printf("rsse-owner: put id %d value %d (durably logged)\n", *id, *value)
		}
	case "del":
		err = remote.Delete(*id, *value)
		if err == nil {
			fmt.Printf("rsse-owner: del id %d value %d (durably logged)\n", *id, *value)
		}
	case "modify":
		err = remote.Modify(*id, *oldValue, *newValue, []byte(*payload))
		if err == nil {
			fmt.Printf("rsse-owner: modify id %d: %d → %d (durably logged)\n", *id, *oldValue, *newValue)
		}
	case "flush":
		err = remote.Flush()
		if err == nil {
			fmt.Println("rsse-owner: flushed pending batch into a fresh epoch")
		}
	case "get":
		var tuples []rsse.Tuple
		if tuples, err = remote.Query(rsse.Range{Lo: *lo, Hi: *hi}); err == nil {
			fmt.Printf("get [%d, %d]: %d live tuples\n", *lo, *hi, len(tuples))
			for _, t := range tuples {
				fmt.Printf("  %d\t%d\t%s\n", t.ID, t.Value, t.Payload)
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	if *doFlush && cmd != "flush" && cmd != "get" {
		if err := remote.Flush(); err != nil {
			fatal(err)
		}
		fmt.Println("rsse-owner: flushed pending batch into a fresh epoch")
	}
}

// shardBuild partitions the CSV across -shards independent indexes and
// writes them with the cluster manifest and master key.
func shardBuild(args []string) {
	fs := flag.NewFlagSet("shard build", flag.ExitOnError)
	scheme := fs.String("scheme", "Logarithmic-SRC-i", "scheme name (see rsse.Kinds)")
	csvPath := fs.String("csv", "", "input CSV: id,value[,payload] with header (required)")
	shards := fs.Int("shards", 4, "number of shards to split the domain into")
	split := fs.String("split", "equal", "domain split policy: equal|quantile")
	outdir := fs.String("outdir", ".", "output directory for shard .idx files and the manifest")
	name := fs.String("name", "table", "cluster base name (shards serve as <name>-shard-<i>)")
	keyfile := fs.String("keyfile", "cluster.key", "output cluster master key file (hex)")
	bits := fs.Uint("bits", 0, "domain bits; 0 = fit to max value")
	sseName := fs.String("sse", "tset", "SSE construction: basic|packed|tset")
	_ = fs.Parse(args)
	if *csvPath == "" {
		fatal(fmt.Errorf("-csv is required"))
	}
	kind, err := rsse.KindByName(*scheme)
	if err != nil {
		fatal(err)
	}
	tuples, maxValue, err := readCSV(*csvPath)
	if err != nil {
		fatal(err)
	}
	domBits := uint8(*bits)
	if domBits == 0 {
		domBits = rsse.FitDomain(maxValue).Bits
	}
	opts := []rsse.ClusterOption{rsse.WithShardOptions(rsse.WithSSE(*sseName))}
	switch *split {
	case "equal":
	case "quantile":
		opts = append(opts, rsse.WithQuantileSplit())
	default:
		fatal(fmt.Errorf("unknown -split %q (equal|quantile)", *split))
	}
	cluster, err := rsse.BuildCluster(kind, domBits, *shards, tuples, opts...)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	man := cluster.Manifest(*name)
	var totalMB float64
	for i := 0; i < cluster.Shards(); i++ {
		blob, err := cluster.ShardIndex(i).MarshalBinary()
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*outdir, man.Shards[i].Name+".idx")
		if err := os.WriteFile(path, blob, 0o600); err != nil {
			fatal(err)
		}
		s := cluster.ShardIndex(i).Stats()
		totalMB += float64(s.IndexBytes) / (1 << 20)
		fmt.Printf("rsse-owner: shard %d %v  %6d tuples → %s\n",
			i, cluster.ShardRange(i), s.N, path)
	}
	manPath := filepath.Join(*outdir, *name+".cluster.json")
	if err := man.WriteFile(manPath); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*keyfile, []byte(hex.EncodeToString(cluster.MasterKey())+"\n"), 0o600); err != nil {
		fatal(err)
	}
	fmt.Printf("rsse-owner: %d tuples → %d shards (%s, domain 2^%d, %s split, %.1f MB total); manifest %s, key %s\n",
		len(tuples), cluster.Shards(), kind, domBits, *split, totalMB, manPath, *keyfile)
}

// shardQuery runs a scatter-gather range query over a cluster, either
// against a remote server fleet (-addr and/or per-shard manifest addrs)
// or over the shard files next to the manifest.
func shardQuery(args []string) {
	fs := flag.NewFlagSet("shard query", flag.ExitOnError)
	manifest := fs.String("manifest", "", "cluster manifest file (required)")
	keyfile := fs.String("keyfile", "cluster.key", "cluster master key file (hex)")
	addr := fs.String("addr", "", "default rsse-server address for shards without a pinned addr; empty = open shard files locally")
	engine := fs.String("storage", "sorted", "storage engine for locally opened shards: "+strings.Join(rsse.StorageEngines(), "|"))
	lo := fs.Uint64("lo", 0, "range lower bound")
	hi := fs.Uint64("hi", 0, "range upper bound")
	workers := fs.Int("workers", 0, "max concurrent shard sub-queries; 0 = all at once")
	partial := fs.Bool("partial", false, "return partial results when a shard fails instead of failing the query")
	payloads := fs.Bool("payloads", false, "fetch and print decrypted payloads")
	_ = fs.Parse(args)
	if *manifest == "" {
		fatal(fmt.Errorf("-manifest is required"))
	}
	man, err := rsse.ReadClusterManifest(*manifest)
	if err != nil {
		fatal(err)
	}
	keyHex, err := os.ReadFile(*keyfile)
	if err != nil {
		fatal(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(keyHex)))
	if err != nil {
		fatal(fmt.Errorf("keyfile: %w", err))
	}
	opts := []rsse.ClusterOption{rsse.WithClusterWorkers(*workers)}
	if *partial {
		opts = append(opts, rsse.WithPartialResults())
	}

	var cluster *rsse.Cluster
	remote := *addr != ""
	for _, s := range man.Shards {
		remote = remote || s.Addr != ""
	}
	if remote {
		cluster, err = rsse.DialCluster("tcp", *addr, man, key, opts...)
	} else {
		dir := filepath.Dir(*manifest)
		cluster, err = rsse.OpenCluster(man, key, func(i int, info rsse.ClusterShardInfo) (*rsse.Index, error) {
			return rsse.OpenIndexFile(filepath.Join(dir, info.Name+".idx"), *engine)
		}, opts...)
	}
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()

	q := rsse.Range{Lo: *lo, Hi: *hi}
	res, err := cluster.Query(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query %v over %d shards: %d matches (%d sub-queries, %d tokens, %d token bytes, %d false positives dropped)\n",
		q, cluster.Shards(), len(res.Matches), len(res.Shards),
		res.Stats.Tokens, res.Stats.TokenBytes, res.Stats.FalsePositives)
	for _, s := range res.Shards {
		status := "ok"
		if s.Err != nil {
			status = "FAILED: " + s.Err.Error()
		}
		fmt.Printf("  shard %d %v: %d matches, %d tokens  [%s]\n",
			s.Shard, s.Range, s.Stats.Matches, s.Stats.Tokens, status)
	}
	for _, id := range res.Matches {
		if *payloads {
			tup, err := cluster.FetchTuple(id)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %d\t%d\t%s\n", tup.ID, tup.Value, tup.Payload)
		} else {
			fmt.Printf("  %d\n", id)
		}
	}
}

// stats opens an index file on the chosen storage engine and prints its
// operational profile.
func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file (required)")
	engine := fs.String("storage", "sorted",
		"storage engine to load onto: "+strings.Join(rsse.StorageEngines(), "|"))
	_ = fs.Parse(args)
	if *indexPath == "" {
		fatal(fmt.Errorf("-index is required"))
	}
	index, err := rsse.OpenIndexFile(*indexPath, *engine)
	if err != nil {
		fatal(err)
	}
	defer index.Close()
	s := index.Stats()
	fmt.Printf("scheme:    %v\n", s.Kind)
	fmt.Printf("tuples:    %d\n", s.N)
	fmt.Printf("postings:  %d\n", s.Postings)
	fmt.Printf("index:     %.2f MB serialized\n", float64(s.IndexBytes)/(1<<20))
	fmt.Printf("store:     %.2f MB serialized\n", float64(s.StoreBytes)/(1<<20))
	fmt.Printf("engine:    %s\n", s.Engine)
	fmt.Printf("resident:  %.2f MB heap\n", float64(s.Resident)/(1<<20))
	fmt.Printf("file:      %.2f MB on disk\n", float64(s.FileBytes)/(1<<20))
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	scheme := fs.String("scheme", "Logarithmic-SRC-i", "scheme name (see rsse.Kinds)")
	csvPath := fs.String("csv", "", "input CSV: id,value[,payload] with header (required)")
	out := fs.String("out", "table.idx", "output index file")
	keyfile := fs.String("keyfile", "table.key", "output master key file (hex)")
	bits := fs.Uint("bits", 0, "domain bits; 0 = fit to max value")
	sseName := fs.String("sse", "tset", "SSE construction: basic|packed|tset")
	_ = fs.Parse(args)
	if *csvPath == "" {
		fatal(fmt.Errorf("-csv is required"))
	}
	kind, err := rsse.KindByName(*scheme)
	if err != nil {
		fatal(err)
	}
	tuples, maxValue, err := readCSV(*csvPath)
	if err != nil {
		fatal(err)
	}
	domBits := uint8(*bits)
	if domBits == 0 {
		domBits = rsse.FitDomain(maxValue).Bits
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		fatal(err)
	}
	client, err := rsse.NewClient(kind, domBits,
		rsse.WithMasterKey(key), rsse.WithSSE(*sseName))
	if err != nil {
		fatal(err)
	}
	index, err := client.BuildIndex(tuples)
	if err != nil {
		fatal(err)
	}
	blob, err := index.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, blob, 0o600); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*keyfile, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		fatal(err)
	}
	fmt.Printf("rsse-owner: %d tuples → %s (%s, domain 2^%d, %.1f MB index); key in %s\n",
		len(tuples), *out, kind, domBits, float64(index.Size())/(1<<20), *keyfile)
}

func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	scheme := fs.String("scheme", "Logarithmic-SRC-i", "scheme name")
	indexPath := fs.String("index", "", "local index file (or use -addr)")
	addr := fs.String("addr", "", "remote rsse-server address (or use -index)")
	name := fs.String("name", rsse.DefaultIndexName, "served index name on the remote server")
	keyfile := fs.String("keyfile", "table.key", "master key file (hex)")
	bits := fs.Uint("bits", 20, "domain bits the index was built with")
	lo := fs.Uint64("lo", 0, "range lower bound")
	hi := fs.Uint64("hi", 0, "range upper bound")
	rangesPath := fs.String("ranges", "", "file of \"lo,hi\" lines: run all ranges as one batched query (overrides -lo/-hi)")
	payloads := fs.Bool("payloads", false, "fetch and print decrypted payloads")
	_ = fs.Parse(args)
	kind, err := rsse.KindByName(*scheme)
	if err != nil {
		fatal(err)
	}
	keyHex, err := os.ReadFile(*keyfile)
	if err != nil {
		fatal(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(keyHex)))
	if err != nil {
		fatal(fmt.Errorf("keyfile: %w", err))
	}
	client, err := rsse.NewClient(kind, uint8(*bits), rsse.WithMasterKey(key))
	if err != nil {
		fatal(err)
	}

	var (
		runOne   func(q rsse.Range) (*rsse.Result, error)
		runBatch func(qs []rsse.Range) (*rsse.BatchResult, error)
		fetch    func(id rsse.ID) (rsse.Tuple, error)
	)
	if *addr != "" {
		remote, err := rsse.DialIndex("tcp", *addr, *name)
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		runOne = func(q rsse.Range) (*rsse.Result, error) { return client.QueryRemote(remote, q) }
		runBatch = func(qs []rsse.Range) (*rsse.BatchResult, error) { return client.QueryBatchRemote(remote, qs) }
		fetch = func(id rsse.ID) (rsse.Tuple, error) { return client.FetchTupleRemote(remote, id) }
	} else if *indexPath != "" {
		blob, err := os.ReadFile(*indexPath)
		if err != nil {
			fatal(err)
		}
		index, err := core.UnmarshalIndex(blob)
		if err != nil {
			fatal(err)
		}
		runOne = func(q rsse.Range) (*rsse.Result, error) { return client.Query(index, q) }
		runBatch = func(qs []rsse.Range) (*rsse.BatchResult, error) { return client.QueryBatch(index, qs) }
		fetch = func(id rsse.ID) (rsse.Tuple, error) { return client.FetchTuple(index, id) }
	} else {
		fatal(fmt.Errorf("one of -index or -addr is required"))
	}

	printMatches := func(ids []rsse.ID) {
		for _, id := range ids {
			if *payloads {
				tup, err := fetch(id)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("  %d\t%d\t%s\n", tup.ID, tup.Value, tup.Payload)
			} else {
				fmt.Printf("  %d\n", id)
			}
		}
	}

	if *rangesPath != "" {
		ranges, err := readRanges(*rangesPath)
		if err != nil {
			fatal(err)
		}
		br, err := runBatch(ranges)
		if err != nil {
			fatal(err)
		}
		s := br.Stats
		fmt.Printf("batch of %d ranges: %d cover nodes deduped to %d tokens (%.2fx), %d rounds, %d token bytes, %d tuples fetched for filtering\n",
			s.Ranges, s.CoverNodes, s.UniqueTokens, s.DedupRatio(), s.Rounds, s.TokenBytes, s.FetchedTuples)
		for i, res := range br.Results {
			fmt.Printf("range %v: %d matches (%d false positives dropped)\n",
				ranges[i], len(res.Matches), res.Stats.FalsePositives)
			printMatches(res.Matches)
		}
		return
	}

	q := rsse.Range{Lo: *lo, Hi: *hi}
	res, err := runOne(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query %v: %d matches (%d rounds, %d token bytes, %d false positives dropped)\n",
		q, len(res.Matches), res.Stats.Rounds, res.Stats.TokenBytes, res.Stats.FalsePositives)
	printMatches(res.Matches)
}

// readRanges parses a batch file: one "lo,hi" (or "lo hi", or a bare
// value for a point query) per line; blank lines and #-comments skipped.
func readRanges(path string) ([]rsse.Range, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []rsse.Range
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.FieldsFunc(line, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		if len(parts) != 1 && len(parts) != 2 {
			return nil, fmt.Errorf("bad range line %q (want \"lo,hi\")", line)
		}
		lo, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound in %q: %w", line, err)
		}
		hi := lo
		if len(parts) == 2 {
			if hi, err = strconv.ParseUint(parts[1], 10, 64); err != nil {
				return nil, fmt.Errorf("bad bound in %q: %w", line, err)
			}
		}
		out = append(out, rsse.Range{Lo: lo, Hi: hi})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no ranges", path)
	}
	return out, sc.Err()
}

// readCSV parses "id,value[,payload]" lines after a header row.
func readCSV(path string) ([]rsse.Tuple, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tuples []rsse.Tuple
	var maxValue uint64
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(strings.ToLower(line), "id,") {
				continue // header
			}
		}
		parts := strings.SplitN(line, ",", 3)
		if len(parts) < 2 {
			return nil, 0, fmt.Errorf("bad CSV line %q", line)
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad id in %q: %w", line, err)
		}
		value, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
		}
		t := rsse.Tuple{ID: id, Value: value}
		if len(parts) == 3 {
			t.Payload = []byte(parts[2])
		}
		if value > maxValue {
			maxValue = value
		}
		tuples = append(tuples, t)
	}
	return tuples, maxValue, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsse-owner:", err)
	os.Exit(1)
}
