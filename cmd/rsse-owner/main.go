// Command rsse-owner is the data owner's CLI: it builds encrypted indexes
// from CSV data and queries them, locally or over the network against an
// rsse-server.
//
// Build an index (writes the index file and a hex key file):
//
//	rsse-owner build -scheme Logarithmic-SRC-i -csv data.csv \
//	    -out table.idx -keyfile table.key [-bits 20]
//
// The CSV must have an "id,value" header row, one tuple per line; an
// optional third column is stored as the encrypted payload.
//
// Query a local index file:
//
//	rsse-owner query -index table.idx -keyfile table.key \
//	    -scheme Logarithmic-SRC-i -bits 20 -lo 100 -hi 500
//
// Query a remote rsse-server:
//
//	rsse-owner query -addr 127.0.0.1:7070 -keyfile table.key \
//	    -scheme Logarithmic-SRC-i -bits 20 -lo 100 -hi 500
//
// Inspect an index file's operational profile (no key needed — these are
// exactly the stats the server can see anyway):
//
//	rsse-owner stats -index table.idx [-storage disk]
//
// With -storage disk the index is memory-mapped and served in place, so
// "resident" shows near zero — the number to compare against "file" when
// sizing a deployment.
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rsse"
	"rsse/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rsse-owner build|query|stats [flags] (see package docs)")
	os.Exit(2)
}

// stats opens an index file on the chosen storage engine and prints its
// operational profile.
func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file (required)")
	engine := fs.String("storage", "sorted",
		"storage engine to load onto: "+strings.Join(rsse.StorageEngines(), "|"))
	_ = fs.Parse(args)
	if *indexPath == "" {
		fatal(fmt.Errorf("-index is required"))
	}
	index, err := rsse.OpenIndexFile(*indexPath, *engine)
	if err != nil {
		fatal(err)
	}
	defer index.Close()
	s := index.Stats()
	fmt.Printf("scheme:    %v\n", s.Kind)
	fmt.Printf("tuples:    %d\n", s.N)
	fmt.Printf("postings:  %d\n", s.Postings)
	fmt.Printf("index:     %.2f MB serialized\n", float64(s.IndexBytes)/(1<<20))
	fmt.Printf("store:     %.2f MB serialized\n", float64(s.StoreBytes)/(1<<20))
	fmt.Printf("engine:    %s\n", s.Engine)
	fmt.Printf("resident:  %.2f MB heap\n", float64(s.Resident)/(1<<20))
	fmt.Printf("file:      %.2f MB on disk\n", float64(s.FileBytes)/(1<<20))
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	scheme := fs.String("scheme", "Logarithmic-SRC-i", "scheme name (see rsse.Kinds)")
	csvPath := fs.String("csv", "", "input CSV: id,value[,payload] with header (required)")
	out := fs.String("out", "table.idx", "output index file")
	keyfile := fs.String("keyfile", "table.key", "output master key file (hex)")
	bits := fs.Uint("bits", 0, "domain bits; 0 = fit to max value")
	sseName := fs.String("sse", "tset", "SSE construction: basic|packed|tset")
	_ = fs.Parse(args)
	if *csvPath == "" {
		fatal(fmt.Errorf("-csv is required"))
	}
	kind, err := rsse.KindByName(*scheme)
	if err != nil {
		fatal(err)
	}
	tuples, maxValue, err := readCSV(*csvPath)
	if err != nil {
		fatal(err)
	}
	domBits := uint8(*bits)
	if domBits == 0 {
		domBits = rsse.FitDomain(maxValue).Bits
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		fatal(err)
	}
	client, err := rsse.NewClient(kind, domBits,
		rsse.WithMasterKey(key), rsse.WithSSE(*sseName))
	if err != nil {
		fatal(err)
	}
	index, err := client.BuildIndex(tuples)
	if err != nil {
		fatal(err)
	}
	blob, err := index.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, blob, 0o600); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*keyfile, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		fatal(err)
	}
	fmt.Printf("rsse-owner: %d tuples → %s (%s, domain 2^%d, %.1f MB index); key in %s\n",
		len(tuples), *out, kind, domBits, float64(index.Size())/(1<<20), *keyfile)
}

func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	scheme := fs.String("scheme", "Logarithmic-SRC-i", "scheme name")
	indexPath := fs.String("index", "", "local index file (or use -addr)")
	addr := fs.String("addr", "", "remote rsse-server address (or use -index)")
	name := fs.String("name", rsse.DefaultIndexName, "served index name on the remote server")
	keyfile := fs.String("keyfile", "table.key", "master key file (hex)")
	bits := fs.Uint("bits", 20, "domain bits the index was built with")
	lo := fs.Uint64("lo", 0, "range lower bound")
	hi := fs.Uint64("hi", 0, "range upper bound")
	payloads := fs.Bool("payloads", false, "fetch and print decrypted payloads")
	_ = fs.Parse(args)
	kind, err := rsse.KindByName(*scheme)
	if err != nil {
		fatal(err)
	}
	keyHex, err := os.ReadFile(*keyfile)
	if err != nil {
		fatal(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(keyHex)))
	if err != nil {
		fatal(fmt.Errorf("keyfile: %w", err))
	}
	client, err := rsse.NewClient(kind, uint8(*bits), rsse.WithMasterKey(key))
	if err != nil {
		fatal(err)
	}
	q := rsse.Range{Lo: *lo, Hi: *hi}

	var res *rsse.Result
	fetch := func(id rsse.ID) (rsse.Tuple, error) { return rsse.Tuple{}, nil }
	if *addr != "" {
		remote, err := rsse.DialIndex("tcp", *addr, *name)
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		if res, err = client.QueryRemote(remote, q); err != nil {
			fatal(err)
		}
		fetch = func(id rsse.ID) (rsse.Tuple, error) { return client.FetchTupleRemote(remote, id) }
	} else if *indexPath != "" {
		blob, err := os.ReadFile(*indexPath)
		if err != nil {
			fatal(err)
		}
		index, err := core.UnmarshalIndex(blob)
		if err != nil {
			fatal(err)
		}
		if res, err = client.Query(index, q); err != nil {
			fatal(err)
		}
		fetch = func(id rsse.ID) (rsse.Tuple, error) { return client.FetchTuple(index, id) }
	} else {
		fatal(fmt.Errorf("one of -index or -addr is required"))
	}

	fmt.Printf("query %v: %d matches (%d rounds, %d token bytes, %d false positives dropped)\n",
		q, len(res.Matches), res.Stats.Rounds, res.Stats.TokenBytes, res.Stats.FalsePositives)
	for _, id := range res.Matches {
		if *payloads {
			tup, err := fetch(id)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %d\t%d\t%s\n", tup.ID, tup.Value, tup.Payload)
		} else {
			fmt.Printf("  %d\n", id)
		}
	}
}

// readCSV parses "id,value[,payload]" lines after a header row.
func readCSV(path string) ([]rsse.Tuple, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tuples []rsse.Tuple
	var maxValue uint64
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(strings.ToLower(line), "id,") {
				continue // header
			}
		}
		parts := strings.SplitN(line, ",", 3)
		if len(parts) < 2 {
			return nil, 0, fmt.Errorf("bad CSV line %q", line)
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad id in %q: %w", line, err)
		}
		value, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
		}
		t := rsse.Tuple{ID: id, Value: value}
		if len(parts) == 3 {
			t.Payload = []byte(parts[2])
		}
		if value > maxValue {
			maxValue = value
		}
		tuples = append(tuples, t)
	}
	return tuples, maxValue, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsse-owner:", err)
	os.Exit(1)
}
